#include "runtime/optimizer.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <unordered_map>
#include <vector>

#include "runtime/arith.h"

namespace mpiwasm::rt {
namespace {

bool is_branch(ROp op) {
  switch (op) {
    case ROp::kBr: case ROp::kBrIf: case ROp::kBrIfNot: case ROp::kBrTable:
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      return true;
    default:
      return false;
  }
}

bool is_terminator(ROp op) {
  return op == ROp::kBr || op == ROp::kBrTable || op == ROp::kReturn ||
         op == ROp::kReturnVoid || op == ROp::kUnreachable;
}

/// The fused compare-and-select family (contiguous in the enum). These ops
/// read a/b/c/d and write a (a is both the "true" value and the dest), so
/// several predicates below special-case them as a group.
bool is_fused_select(ROp op) {
  return op >= ROp::kSelectI32Eq && op <= ROp::kSelectF64Gt;
}

/// Register reads of an instruction (calls handled by callers).
void collect_reads(const RInstr& in, std::vector<u32>& out) {
  out.clear();
  // Atomics: loads read the address (b); rmw additionally the operand (c);
  // cmpxchg and wait also read d; stores read address (a) and value (b).
  if (rop_is_atomic(in.op)) {
    switch (in.op) {
      case ROp::kAtomicFence:
        break;
      case ROp::kAtomicNotify:
        out.push_back(in.b); out.push_back(in.c);
        break;
      case ROp::kAtomicWait32: case ROp::kAtomicWait64:
        out.push_back(in.b); out.push_back(in.c); out.push_back(in.d);
        break;
      default:
        if (in.op >= ROp::kI32AtomicLoad && in.op <= ROp::kI64AtomicLoad32U) {
          out.push_back(in.b);
        } else if (in.op >= ROp::kI32AtomicStore &&
                   in.op <= ROp::kI64AtomicStore32) {
          out.push_back(in.a); out.push_back(in.b);
        } else if (in.op >= ROp::kI32AtomicRmwCmpxchg) {
          out.push_back(in.b); out.push_back(in.c); out.push_back(in.d);
        } else {
          out.push_back(in.b); out.push_back(in.c);  // rmw
        }
        break;
    }
    return;
  }
  // Fused selects read the destination (the "true" value), the "false"
  // value, and both compare operands.
  if (is_fused_select(in.op)) {
    out.push_back(in.a); out.push_back(in.b);
    out.push_back(in.c); out.push_back(in.d);
    return;
  }
  switch (in.op) {
    case ROp::kNop: case ROp::kConst: case ROp::kConstV128:
    case ROp::kGlobalGet: case ROp::kBr: case ROp::kReturnVoid:
    case ROp::kUnreachable: case ROp::kMemorySize:
      break;
    case ROp::kMov:
      out.push_back(in.b);
      break;
    // Select-shaped ops: a is both a source and the destination.
    case ROp::kSelect: case ROp::kV128Bitselect:
      out.push_back(in.a); out.push_back(in.b); out.push_back(in.c);
      break;
    case ROp::kGlobalSet: case ROp::kBrIf: case ROp::kBrIfNot:
    case ROp::kBrTable: case ROp::kReturn: case ROp::kMemoryGrow:
      out.push_back(in.a);
      break;
    case ROp::kMemoryCopy: case ROp::kMemoryFill:
      out.push_back(in.a); out.push_back(in.b); out.push_back(in.c);
      break;
    case ROp::kCall:
      for (u32 i = 0; i < in.b; ++i) out.push_back(in.a + i);
      break;
    case ROp::kCallIndirect:
      for (u32 i = 0; i < in.b + 1; ++i) out.push_back(in.a + i);
      break;
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      out.push_back(in.a); out.push_back(in.b);
      break;
    case ROp::kF64MulAdd: case ROp::kF32MulAdd:
      out.push_back(in.b); out.push_back(in.c); out.push_back(in.d);
      break;
    case ROp::kI32AddImm: case ROp::kI64AddImm: case ROp::kI32ShlImm:
    case ROp::kI32ShrUImm: case ROp::kI32AndImm: case ROp::kI32MulImm:
      out.push_back(in.b);
      break;
    case ROp::kMemGuard:
      out.push_back(in.b); out.push_back(in.c);
      break;
    // Loads read the address in b; load+op additionally reads c; indexed
    // loads read base (b) and index (c), d is the shift amount.
    case ROp::kI32Load: case ROp::kI64Load: case ROp::kF32Load:
    case ROp::kF64Load: case ROp::kI32Load8S: case ROp::kI32Load8U:
    case ROp::kI32Load16S: case ROp::kI32Load16U: case ROp::kI64Load8S:
    case ROp::kI64Load8U: case ROp::kI64Load16S: case ROp::kI64Load16U:
    case ROp::kI64Load32S: case ROp::kI64Load32U: case ROp::kV128Load:
    case ROp::kV128Load32Splat: case ROp::kV128Load64Splat:
    case ROp::kI32LoadRaw: case ROp::kI64LoadRaw: case ROp::kF32LoadRaw:
    case ROp::kF64LoadRaw: case ROp::kV128LoadRaw:
      out.push_back(in.b);
      break;
    case ROp::kI32LoadAdd: case ROp::kI64LoadAdd: case ROp::kF32LoadAdd:
    case ROp::kF64LoadAdd: case ROp::kF32LoadMul: case ROp::kF64LoadMul:
    case ROp::kI32x4LoadAdd: case ROp::kF32x4LoadAdd: case ROp::kF32x4LoadMul:
    case ROp::kF64x2LoadAdd: case ROp::kF64x2LoadMul:
    case ROp::kI32LoadIx: case ROp::kI64LoadIx: case ROp::kF32LoadIx:
    case ROp::kF64LoadIx: case ROp::kV128LoadIx:
    case ROp::kI32LoadIxRaw: case ROp::kI64LoadIxRaw: case ROp::kF32LoadIxRaw:
    case ROp::kF64LoadIxRaw: case ROp::kV128LoadIxRaw:
      out.push_back(in.b); out.push_back(in.c);
      break;
    // Stores read address (a) and value (b); op+store and indexed stores
    // additionally read c.
    case ROp::kI32Store: case ROp::kI64Store: case ROp::kF32Store:
    case ROp::kF64Store: case ROp::kI32Store8: case ROp::kI32Store16:
    case ROp::kI64Store8: case ROp::kI64Store16: case ROp::kI64Store32:
    case ROp::kV128Store:
    case ROp::kI32StoreRaw: case ROp::kI64StoreRaw: case ROp::kF32StoreRaw:
    case ROp::kF64StoreRaw: case ROp::kV128StoreRaw:
      out.push_back(in.a); out.push_back(in.b);
      break;
    case ROp::kI32AddStore: case ROp::kF32AddStore: case ROp::kF64AddStore:
    case ROp::kF64MulStore:
    case ROp::kI32x4AddStore: case ROp::kF32x4AddStore:
    case ROp::kF64x2AddStore: case ROp::kF64x2MulStore:
    case ROp::kI32StoreIx: case ROp::kI64StoreIx: case ROp::kF32StoreIx:
    case ROp::kF64StoreIx: case ROp::kV128StoreIx:
    case ROp::kI32StoreIxRaw: case ROp::kI64StoreIxRaw: case ROp::kF32StoreIxRaw:
    case ROp::kF64StoreIxRaw: case ROp::kV128StoreIxRaw:
      out.push_back(in.a); out.push_back(in.b); out.push_back(in.c);
      break;
    default:
      // Numeric ops: unops read b; binops read b and c. We conservatively
      // report both; b==c for unops is harmless.
      out.push_back(in.b);
      out.push_back(in.c);
      break;
  }
}

bool writes_dest(const RInstr& in) {
  // Atomic stores and the fence produce no register result; every other
  // atomic (loads, rmw, cmpxchg, wait, notify) writes the old/outcome
  // value to a.
  if (in.op == ROp::kAtomicFence ||
      (in.op >= ROp::kI32AtomicStore && in.op <= ROp::kI64AtomicStore32))
    return false;
  switch (in.op) {
    case ROp::kNop: case ROp::kGlobalSet: case ROp::kBr: case ROp::kBrIf:
    case ROp::kBrIfNot: case ROp::kBrTable: case ROp::kReturn:
    case ROp::kReturnVoid: case ROp::kUnreachable: case ROp::kMemoryCopy:
    case ROp::kMemoryFill:
    case ROp::kI32Store: case ROp::kI64Store: case ROp::kF32Store:
    case ROp::kF64Store: case ROp::kI32Store8: case ROp::kI32Store16:
    case ROp::kI64Store8: case ROp::kI64Store16: case ROp::kI64Store32:
    case ROp::kV128Store:
    case ROp::kI32StoreRaw: case ROp::kI64StoreRaw: case ROp::kF32StoreRaw:
    case ROp::kF64StoreRaw: case ROp::kV128StoreRaw:
    case ROp::kI32AddStore: case ROp::kF32AddStore: case ROp::kF64AddStore:
    case ROp::kF64MulStore:
    case ROp::kI32x4AddStore: case ROp::kF32x4AddStore:
    case ROp::kF64x2AddStore: case ROp::kF64x2MulStore:
    case ROp::kI32StoreIx: case ROp::kI64StoreIx: case ROp::kF32StoreIx:
    case ROp::kF64StoreIx: case ROp::kV128StoreIx:
    case ROp::kI32StoreIxRaw: case ROp::kI64StoreIxRaw: case ROp::kF32StoreIxRaw:
    case ROp::kF64StoreIxRaw: case ROp::kV128StoreIxRaw:
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      return false;
    default:
      return true;
  }
}

/// Ops whose d field names a register (not a shift amount / flag word).
bool reads_d_reg(ROp op) {
  return op == ROp::kF64MulAdd || op == ROp::kF32MulAdd ||
         is_fused_select(op) ||
         op == ROp::kAtomicWait32 || op == ROp::kAtomicWait64 ||
         (op >= ROp::kI32AtomicRmwCmpxchg &&
          op <= ROp::kI64AtomicRmw32CmpxchgU);
}

/// Instructions that may be removed when their destination is dead: no
/// traps, no control flow, no stores/calls/global writes.
bool is_pure(ROp op) {
  if (is_fused_select(op)) return true;
  switch (op) {
    case ROp::kMov: case ROp::kConst: case ROp::kConstV128: case ROp::kSelect:
    case ROp::kGlobalGet:
    case ROp::kI32Eqz: case ROp::kI32Eq: case ROp::kI32Ne: case ROp::kI32LtS:
    case ROp::kI32LtU: case ROp::kI32GtS: case ROp::kI32GtU: case ROp::kI32LeS:
    case ROp::kI32LeU: case ROp::kI32GeS: case ROp::kI32GeU:
    case ROp::kI64Eqz: case ROp::kI64Eq: case ROp::kI64Ne: case ROp::kI64LtS:
    case ROp::kI64LtU: case ROp::kI64GtS: case ROp::kI64GtU: case ROp::kI64LeS:
    case ROp::kI64LeU: case ROp::kI64GeS: case ROp::kI64GeU:
    case ROp::kF32Eq: case ROp::kF32Ne: case ROp::kF32Lt: case ROp::kF32Gt:
    case ROp::kF32Le: case ROp::kF32Ge:
    case ROp::kF64Eq: case ROp::kF64Ne: case ROp::kF64Lt: case ROp::kF64Gt:
    case ROp::kF64Le: case ROp::kF64Ge:
    case ROp::kI32Clz: case ROp::kI32Ctz: case ROp::kI32Popcnt:
    case ROp::kI32Add: case ROp::kI32Sub: case ROp::kI32Mul:
    case ROp::kI32And: case ROp::kI32Or: case ROp::kI32Xor: case ROp::kI32Shl:
    case ROp::kI32ShrS: case ROp::kI32ShrU: case ROp::kI32Rotl: case ROp::kI32Rotr:
    case ROp::kI64Clz: case ROp::kI64Ctz: case ROp::kI64Popcnt:
    case ROp::kI64Add: case ROp::kI64Sub: case ROp::kI64Mul:
    case ROp::kI64And: case ROp::kI64Or: case ROp::kI64Xor: case ROp::kI64Shl:
    case ROp::kI64ShrS: case ROp::kI64ShrU: case ROp::kI64Rotl: case ROp::kI64Rotr:
    case ROp::kF32Abs: case ROp::kF32Neg: case ROp::kF32Ceil: case ROp::kF32Floor:
    case ROp::kF32Trunc: case ROp::kF32Nearest: case ROp::kF32Sqrt:
    case ROp::kF32Add: case ROp::kF32Sub: case ROp::kF32Mul: case ROp::kF32Div:
    case ROp::kF32Min: case ROp::kF32Max: case ROp::kF32Copysign:
    case ROp::kF64Abs: case ROp::kF64Neg: case ROp::kF64Ceil: case ROp::kF64Floor:
    case ROp::kF64Trunc: case ROp::kF64Nearest: case ROp::kF64Sqrt:
    case ROp::kF64Add: case ROp::kF64Sub: case ROp::kF64Mul: case ROp::kF64Div:
    case ROp::kF64Min: case ROp::kF64Max: case ROp::kF64Copysign:
    case ROp::kI32WrapI64: case ROp::kI64ExtendI32S: case ROp::kI64ExtendI32U:
    case ROp::kF32ConvertI32S: case ROp::kF32ConvertI32U:
    case ROp::kF32ConvertI64S: case ROp::kF32ConvertI64U: case ROp::kF32DemoteF64:
    case ROp::kF64ConvertI32S: case ROp::kF64ConvertI32U:
    case ROp::kF64ConvertI64S: case ROp::kF64ConvertI64U: case ROp::kF64PromoteF32:
    case ROp::kI32ReinterpretF32: case ROp::kI64ReinterpretF64:
    case ROp::kF32ReinterpretI32: case ROp::kF64ReinterpretI64:
    case ROp::kI32Extend8S: case ROp::kI32Extend16S: case ROp::kI64Extend8S:
    case ROp::kI64Extend16S: case ROp::kI64Extend32S:
    case ROp::kI8x16Splat: case ROp::kI16x8Splat: case ROp::kI32x4Splat:
    case ROp::kI64x2Splat: case ROp::kF32x4Splat: case ROp::kF64x2Splat:
    case ROp::kI8x16ExtractLaneS: case ROp::kI8x16ExtractLaneU:
    case ROp::kI16x8ExtractLaneS: case ROp::kI16x8ExtractLaneU:
    case ROp::kI32x4ExtractLane: case ROp::kI64x2ExtractLane:
    case ROp::kF32x4ExtractLane: case ROp::kF64x2ExtractLane:
    case ROp::kI8x16ReplaceLane: case ROp::kI16x8ReplaceLane:
    case ROp::kI32x4ReplaceLane: case ROp::kI64x2ReplaceLane:
    case ROp::kF32x4ReplaceLane: case ROp::kF64x2ReplaceLane:
    case ROp::kI8x16Shuffle: case ROp::kI8x16Swizzle:
    case ROp::kI8x16Eq: case ROp::kI8x16Ne: case ROp::kI8x16LtS:
    case ROp::kI8x16LtU: case ROp::kI8x16GtS: case ROp::kI8x16GtU:
    case ROp::kI8x16LeS: case ROp::kI8x16LeU: case ROp::kI8x16GeS:
    case ROp::kI8x16GeU:
    case ROp::kI16x8Eq: case ROp::kI16x8Ne: case ROp::kI16x8LtS:
    case ROp::kI16x8LtU: case ROp::kI16x8GtS: case ROp::kI16x8GtU:
    case ROp::kI16x8LeS: case ROp::kI16x8LeU: case ROp::kI16x8GeS:
    case ROp::kI16x8GeU:
    case ROp::kI32x4Eq: case ROp::kI32x4Ne: case ROp::kI32x4LtS:
    case ROp::kI32x4LtU: case ROp::kI32x4GtS: case ROp::kI32x4GtU:
    case ROp::kI32x4LeS: case ROp::kI32x4LeU: case ROp::kI32x4GeS:
    case ROp::kI32x4GeU:
    case ROp::kF32x4Eq: case ROp::kF32x4Ne: case ROp::kF32x4Lt:
    case ROp::kF32x4Gt: case ROp::kF32x4Le: case ROp::kF32x4Ge:
    case ROp::kF64x2Eq: case ROp::kF64x2Ne: case ROp::kF64x2Lt:
    case ROp::kF64x2Gt: case ROp::kF64x2Le: case ROp::kF64x2Ge:
    case ROp::kV128Not: case ROp::kV128And: case ROp::kV128AndNot:
    case ROp::kV128Or: case ROp::kV128Xor: case ROp::kV128AnyTrue:
    case ROp::kV128Bitselect:
    case ROp::kI8x16Abs: case ROp::kI8x16Neg: case ROp::kI8x16AllTrue:
    case ROp::kI8x16Add: case ROp::kI8x16Sub:
    case ROp::kI16x8Abs: case ROp::kI16x8Neg: case ROp::kI16x8AllTrue:
    case ROp::kI16x8Add: case ROp::kI16x8Sub: case ROp::kI16x8Mul:
    case ROp::kI32x4Abs: case ROp::kI32x4Neg: case ROp::kI32x4AllTrue:
    case ROp::kI32x4Shl: case ROp::kI32x4ShrS: case ROp::kI32x4ShrU:
    case ROp::kI32x4Add: case ROp::kI32x4Sub: case ROp::kI32x4Mul:
    case ROp::kI32x4MinS: case ROp::kI32x4MinU: case ROp::kI32x4MaxS:
    case ROp::kI32x4MaxU:
    case ROp::kI64x2Abs: case ROp::kI64x2Neg: case ROp::kI64x2AllTrue:
    case ROp::kI64x2Shl: case ROp::kI64x2ShrS: case ROp::kI64x2ShrU:
    case ROp::kI64x2Add: case ROp::kI64x2Sub: case ROp::kI64x2Mul:
    case ROp::kF32x4Abs: case ROp::kF32x4Neg: case ROp::kF32x4Sqrt:
    case ROp::kF32x4Add: case ROp::kF32x4Sub: case ROp::kF32x4Mul:
    case ROp::kF32x4Div:
    case ROp::kF32x4Min: case ROp::kF32x4Max: case ROp::kF32x4Pmin:
    case ROp::kF32x4Pmax:
    case ROp::kF64x2Abs: case ROp::kF64x2Neg: case ROp::kF64x2Sqrt:
    case ROp::kF64x2Add: case ROp::kF64x2Sub: case ROp::kF64x2Mul:
    case ROp::kF64x2Div:
    case ROp::kF64x2Min: case ROp::kF64x2Max: case ROp::kF64x2Pmin:
    case ROp::kF64x2Pmax:
    case ROp::kI32AddImm: case ROp::kI64AddImm: case ROp::kI32ShlImm:
    case ROp::kI32ShrUImm: case ROp::kI32AndImm: case ROp::kI32MulImm:
    case ROp::kF64MulAdd: case ROp::kF32MulAdd:
    // Raw loads sit behind a passing kMemGuard and cannot trap, so a dead
    // one is removable.
    case ROp::kI32LoadRaw: case ROp::kI64LoadRaw: case ROp::kF32LoadRaw:
    case ROp::kF64LoadRaw: case ROp::kV128LoadRaw:
    case ROp::kI32LoadIxRaw: case ROp::kI64LoadIxRaw: case ROp::kF32LoadIxRaw:
    case ROp::kF64LoadIxRaw: case ROp::kV128LoadIxRaw:
      return true;
    default:
      return false;  // div/rem/trunc trap; loads trap; calls/stores effect
  }
}

struct Cfg {
  std::vector<size_t> leaders;               // sorted block start indices
  std::vector<size_t> block_of;              // instr -> block id
  std::vector<std::vector<u32>> successors;  // block id -> block ids

  size_t block_start(size_t b) const { return leaders[b]; }
  size_t block_end(size_t b, size_t n) const {
    return b + 1 < leaders.size() ? leaders[b + 1] : n;
  }
};

std::vector<u32> branch_targets(const RFunc& f, const RInstr& in) {
  std::vector<u32> out;
  if (in.op == ROp::kBrTable) {
    for (u32 t : f.br_pool[in.imm]) out.push_back(t);
  } else if (is_branch(in.op)) {
    out.push_back(u32(in.imm));
  }
  return out;
}

Cfg build_cfg(const RFunc& f) {
  const size_t n = f.code.size();
  std::vector<bool> leader(n + 1, false);
  leader[0] = true;
  for (size_t i = 0; i < n; ++i) {
    const RInstr& in = f.code[i];
    if (is_branch(in.op) || is_terminator(in.op)) {
      for (u32 t : branch_targets(f, in)) {
        MW_CHECK(t <= n, "branch target out of range");
        if (t < n) leader[t] = true;
      }
      if (i + 1 < n) leader[i + 1] = true;
    }
  }
  Cfg cfg;
  cfg.block_of.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (leader[i]) cfg.leaders.push_back(i);
    cfg.block_of[i] = cfg.leaders.size() - 1;
  }
  cfg.successors.resize(cfg.leaders.size());
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    size_t last = cfg.block_end(b, n) - 1;
    const RInstr& in = f.code[last];
    if (is_terminator(in.op)) {
      for (u32 t : branch_targets(f, in))
        if (t < n) cfg.successors[b].push_back(u32(cfg.block_of[t]));
    } else {
      if (is_branch(in.op))
        for (u32 t : branch_targets(f, in))
          if (t < n) cfg.successors[b].push_back(u32(cfg.block_of[t]));
      if (last + 1 < n) cfg.successors[b].push_back(u32(cfg.block_of[last + 1]));
    }
  }
  return cfg;
}

// ---- Pass 1+2: block-local copy propagation & constant folding -----------

/// Interns `v` in the function's v128 pool, reusing an existing entry so
/// repeated folds cannot grow the pool without bound.
u32 intern_v128(RFunc& f, const wasm::V128& v) {
  for (u32 i = 0; i < f.v128_pool.size(); ++i)
    if (f.v128_pool[i] == v) return i;
  f.v128_pool.push_back(v);
  return u32(f.v128_pool.size() - 1);
}

/// Splat of a known scalar constant -> v128 constant. Float splats copy the
/// raw bit pattern, exactly like the runtime handler, so folding is
/// bit-identical even for NaN payloads.
std::optional<wasm::V128> fold_splat(ROp op, u64 bits) {
  using wasm::V128;
  switch (op) {
    case ROp::kI8x16Splat: return V128::splat<u8>(u8(bits));
    case ROp::kI16x8Splat: return V128::splat<u16>(u16(bits));
    case ROp::kI32x4Splat: case ROp::kF32x4Splat:
      return V128::splat<u32>(u32(bits));
    case ROp::kI64x2Splat: case ROp::kF64x2Splat:
      return V128::splat<u64>(bits);
    default: return std::nullopt;
  }
}

/// v128 binop over two known-constant vectors. Restricted to bitwise ops
/// and wrapping integer lane arithmetic: those are environment-independent,
/// so compile-time evaluation can never disagree with the executor.
std::optional<wasm::V128> fold_v128_binop(ROp op, const wasm::V128& x,
                                          const wasm::V128& y) {
  using namespace arith;
  switch (op) {
    case ROp::kV128And: return v128_bitop_and(x, y);
    case ROp::kV128AndNot: return v128_bitop_andnot(x, y);
    case ROp::kV128Or: return v128_bitop_or(x, y);
    case ROp::kV128Xor: return v128_bitop_xor(x, y);
    case ROp::kI8x16Add:
      return v128_binop<u8, 16>(x, y, [](u8 a, u8 b) { return u8(a + b); });
    case ROp::kI8x16Sub:
      return v128_binop<u8, 16>(x, y, [](u8 a, u8 b) { return u8(a - b); });
    case ROp::kI16x8Add:
      return v128_binop<u16, 8>(x, y, [](u16 a, u16 b) { return u16(a + b); });
    case ROp::kI16x8Sub:
      return v128_binop<u16, 8>(x, y, [](u16 a, u16 b) { return u16(a - b); });
    case ROp::kI16x8Mul:
      return v128_binop<u16, 8>(x, y, [](u16 a, u16 b) { return u16(a * b); });
    case ROp::kI32x4Add:
      return v128_binop<u32, 4>(x, y, [](u32 a, u32 b) { return a + b; });
    case ROp::kI32x4Sub:
      return v128_binop<u32, 4>(x, y, [](u32 a, u32 b) { return a - b; });
    case ROp::kI32x4Mul:
      return v128_binop<u32, 4>(x, y, [](u32 a, u32 b) { return a * b; });
    case ROp::kI64x2Add:
      return v128_binop<u64, 2>(x, y, [](u64 a, u64 b) { return a + b; });
    case ROp::kI64x2Sub:
      return v128_binop<u64, 2>(x, y, [](u64 a, u64 b) { return a - b; });
    case ROp::kI64x2Mul:
      return v128_binop<u64, 2>(x, y, [](u64 a, u64 b) { return a * b; });
    default: return std::nullopt;
  }
}

std::optional<u64> fold_binop(ROp op, u64 x, u64 y) {
  using namespace arith;
  auto xi32 = i32(u32(x)); auto yi32 = i32(u32(y));
  auto xu32 = u32(x); auto yu32 = u32(y);
  auto xi64 = i64(x); auto yi64 = i64(y);
  switch (op) {
    case ROp::kI32Add: return u64(u32(xi32 + yi32));
    case ROp::kI32Sub: return u64(u32(xi32 - yi32));
    case ROp::kI32Mul: return u64(u32(xi32 * yi32));
    case ROp::kI32And: return u64(xu32 & yu32);
    case ROp::kI32Or: return u64(xu32 | yu32);
    case ROp::kI32Xor: return u64(xu32 ^ yu32);
    case ROp::kI32Shl: return u64(i32_shl(xu32, yu32));
    case ROp::kI32ShrS: return u64(u32(i32_shr_s(xi32, yu32)));
    case ROp::kI32ShrU: return u64(i32_shr_u(xu32, yu32));
    case ROp::kI32Eq: return u64(xi32 == yi32);
    case ROp::kI32Ne: return u64(xi32 != yi32);
    case ROp::kI32LtS: return u64(xi32 < yi32);
    case ROp::kI32LtU: return u64(xu32 < yu32);
    case ROp::kI32GtS: return u64(xi32 > yi32);
    case ROp::kI32GtU: return u64(xu32 > yu32);
    case ROp::kI32LeS: return u64(xi32 <= yi32);
    case ROp::kI32LeU: return u64(xu32 <= yu32);
    case ROp::kI32GeS: return u64(xi32 >= yi32);
    case ROp::kI32GeU: return u64(xu32 >= yu32);
    case ROp::kI64Add: return u64(xi64 + yi64);
    case ROp::kI64Sub: return u64(xi64 - yi64);
    case ROp::kI64Mul: return u64(xi64 * yi64);
    case ROp::kI64And: return x & y;
    case ROp::kI64Or: return x | y;
    case ROp::kI64Xor: return x ^ y;
    case ROp::kI64Shl: return i64_shl(x, y);
    default: return std::nullopt;
  }
}

/// Folds an *Imm op whose register operand is itself a known constant
/// (arises when lowering already emitted the fused form).
std::optional<u64> fold_immop(ROp op, u64 x, u64 imm) {
  using namespace arith;
  switch (op) {
    case ROp::kI32AddImm: return u64(u32(u32(x) + u32(imm)));
    case ROp::kI64AddImm: return x + imm;
    case ROp::kI32ShlImm: return u64(i32_shl(u32(x), u32(imm)));
    case ROp::kI32ShrUImm: return u64(i32_shr_u(u32(x), u32(imm)));
    case ROp::kI32AndImm: return u64(u32(x) & u32(imm));
    case ROp::kI32MulImm: return u64(u32(u32(x) * u32(imm)));
    default: return std::nullopt;
  }
}

struct ImmFusion {
  ROp fused;
  bool commutative;
};

std::optional<ImmFusion> imm_fusable(ROp op) {
  switch (op) {
    case ROp::kI32Add: return ImmFusion{ROp::kI32AddImm, true};
    case ROp::kI64Add: return ImmFusion{ROp::kI64AddImm, true};
    case ROp::kI32Shl: return ImmFusion{ROp::kI32ShlImm, false};
    case ROp::kI32ShrU: return ImmFusion{ROp::kI32ShrUImm, false};
    case ROp::kI32And: return ImmFusion{ROp::kI32AndImm, true};
    case ROp::kI32Mul: return ImmFusion{ROp::kI32MulImm, true};
    default: return std::nullopt;
  }
}

u32 local_forward_pass(RFunc& f, const Cfg& cfg, bool simd_fold) {
  u32 changes = 0;
  std::vector<u32> reads;
  const size_t n = f.code.size();
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    std::unordered_map<u32, u32> copy_of;   // reg -> original reg
    std::unordered_map<u32, u64> const_of;  // reg -> constant bits
    std::unordered_map<u32, u32> v128_of;   // reg -> v128_pool index
    auto resolve = [&](u32 r) {
      auto it = copy_of.find(r);
      return it == copy_of.end() ? r : it->second;
    };
    auto kill = [&](u32 r) {
      copy_of.erase(r);
      const_of.erase(r);
      v128_of.erase(r);
      for (auto it = copy_of.begin(); it != copy_of.end();) {
        if (it->second == r) it = copy_of.erase(it);
        else ++it;
      }
    };
    for (size_t i = cfg.block_start(b); i < cfg.block_end(b, n); ++i) {
      RInstr& in = f.code[i];
      // Copy propagation on register operands.
      switch (in.op) {
        case ROp::kMov: {
          u32 src = resolve(in.b);
          if (src != in.b) { in.b = src; ++changes; }
          break;
        }
        case ROp::kCall: case ROp::kCallIndirect:
          break;  // contiguous arg window: cannot rewrite operands
        case ROp::kSelect: case ROp::kV128Bitselect:
          // a is both source and dest; only b/c are rewritable.
          if (resolve(in.b) != in.b) { in.b = resolve(in.b); ++changes; }
          if (resolve(in.c) != in.c) { in.c = resolve(in.c); ++changes; }
          break;
        default: {
          // Like kSelect, fused selects have a as both source and dest;
          // only b/c/d are rewritable.
          if (is_fused_select(in.op)) {
            if (resolve(in.b) != in.b) { in.b = resolve(in.b); ++changes; }
            if (resolve(in.c) != in.c) { in.c = resolve(in.c); ++changes; }
            if (resolve(in.d) != in.d) { in.d = resolve(in.d); ++changes; }
            break;
          }
          collect_reads(in, reads);
          bool dest_written = writes_dest(in);
          for (u32 r : reads) {
            u32 rr = resolve(r);
            if (rr == r) continue;
            // Rewrite matching operand fields (careful: dest alias in.a).
            if (!dest_written && in.a == r) { in.a = rr; ++changes; }
            if (reads_d_reg(in.op)) {
              if (in.b == r) { in.b = rr; ++changes; }
              if (in.c == r) { in.c = rr; ++changes; }
              if (in.d == r) { in.d = rr; ++changes; }
            } else {
              if (in.b == r) { in.b = rr; ++changes; }
              if (writes_dest(in) && in.c == r &&
                  in.op != ROp::kMov) { in.c = rr; ++changes; }
              if (!writes_dest(in) && in.c == r) { in.c = rr; ++changes; }
            }
          }
          break;
        }
      }
      // Constant folding.
      if (writes_dest(in)) {
        bool b_const = const_of.count(in.b) != 0;
        bool c_const = const_of.count(in.c) != 0;
        if (in.op != ROp::kMov && in.op != ROp::kConst &&
            in.op != ROp::kConstV128 && in.op != ROp::kSelect &&
            in.op != ROp::kCall && in.op != ROp::kCallIndirect) {
          if (b_const && c_const) {
            if (auto v = fold_binop(in.op, const_of[in.b], const_of[in.c])) {
              in = RInstr{ROp::kConst, in.a, 0, 0, 0, *v};
              ++changes;
            }
          } else if (c_const) {
            if (auto fu = imm_fusable(in.op)) {
              in = RInstr{fu->fused, in.a, in.b, 0, 0, const_of[in.c]};
              ++changes;
            }
          } else if (b_const) {
            if (auto fu = imm_fusable(in.op); fu && fu->commutative) {
              in = RInstr{fu->fused, in.a, in.c, 0, 0, const_of[in.b]};
              ++changes;
            }
          }
        }
        if (in.op == ROp::kMov && const_of.count(in.b)) {
          in = RInstr{ROp::kConst, in.a, 0, 0, 0, const_of[in.b]};
          ++changes;
        }
        if (const_of.count(in.b)) {
          if (auto v = fold_immop(in.op, const_of[in.b], in.imm)) {
            in = RInstr{ROp::kConst, in.a, 0, 0, 0, *v};
            ++changes;
          }
        }
        // SIMD folding: splat-of-constant and integer/bitwise v128 binops
        // with two known-constant vectors collapse into pooled constants.
        if (simd_fold) {
          if (const_of.count(in.b)) {
            if (auto v = fold_splat(in.op, const_of[in.b])) {
              in = RInstr{ROp::kConstV128, in.a, 0, 0, 0, intern_v128(f, *v)};
              ++changes;
            }
          }
          if (v128_of.count(in.b) && v128_of.count(in.c)) {
            if (auto v = fold_v128_binop(in.op, f.v128_pool[v128_of[in.b]],
                                         f.v128_pool[v128_of[in.c]])) {
              in = RInstr{ROp::kConstV128, in.a, 0, 0, 0, intern_v128(f, *v)};
              ++changes;
            }
          }
        }
        // Strength reduction: mul by a power of two becomes a shift (also
        // the shape the indexed-address fusion matches on).
        if (in.op == ROp::kI32MulImm) {
          u32 m = u32(in.imm);
          if (m != 0 && (m & (m - 1)) == 0) {
            in.op = ROp::kI32ShlImm;
            in.imm = u64(std::countr_zero(m));
            ++changes;
          }
        }
      }
      // Update maps.
      if (writes_dest(in)) {
        kill(in.a);
        if (in.op == ROp::kConst) const_of[in.a] = in.imm;
        else if (in.op == ROp::kConstV128) v128_of[in.a] = u32(in.imm);
        else if (in.op == ROp::kMov && in.a != in.b) copy_of[in.a] = resolve(in.b);
      }
      if (in.op == ROp::kMemoryGrow) kill(in.a);
    }
  }
  return changes;
}

// ---- Pass 3: peephole fusion ----------------------------------------------

std::optional<ROp> fused_brif(ROp cmp, bool negate) {
  switch (cmp) {
    case ROp::kI32Eq: return negate ? ROp::kBrIfI32Ne : ROp::kBrIfI32Eq;
    case ROp::kI32Ne: return negate ? ROp::kBrIfI32Eq : ROp::kBrIfI32Ne;
    case ROp::kI32LtS: return negate ? ROp::kBrIfI32GeS : ROp::kBrIfI32LtS;
    case ROp::kI32LtU: return negate ? ROp::kBrIfI32GeU : ROp::kBrIfI32LtU;
    case ROp::kI32GtS: return negate ? ROp::kBrIfI32LeS : ROp::kBrIfI32GtS;
    case ROp::kI32GtU: return negate ? ROp::kBrIfI32LeU : ROp::kBrIfI32GtU;
    case ROp::kI32LeS: return negate ? ROp::kBrIfI32GtS : ROp::kBrIfI32LeS;
    case ROp::kI32LeU: return negate ? ROp::kBrIfI32GtU : ROp::kBrIfI32LeU;
    case ROp::kI32GeS: return negate ? ROp::kBrIfI32LtS : ROp::kBrIfI32GeS;
    case ROp::kI32GeU: return negate ? ROp::kBrIfI32LtU : ROp::kBrIfI32GeU;
    default: return std::nullopt;
  }
}

// ---- Liveness ---------------------------------------------------------------

/// Per-instruction live-out sets (reg live immediately after the instruction
/// executes, considering all CFG paths). O(n_instr * n_regs) memory, which is
/// fine at RegCode function sizes.
struct Liveness {
  std::vector<std::vector<bool>> out;  // [instr][reg]
  bool live_after(size_t i, u32 reg) const { return out[i][reg]; }
};

Liveness compute_liveness(const RFunc& f, const Cfg& cfg) {
  const size_t n = f.code.size();
  const size_t nb = cfg.leaders.size();
  const u32 nregs = f.num_regs;
  std::vector<std::vector<bool>> live_in(nb, std::vector<bool>(nregs, false));
  std::vector<std::vector<bool>> block_out(nb, std::vector<bool>(nregs, false));
  std::vector<u32> reads;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = nb; b-- > 0;) {
      std::vector<bool> out(nregs, false);
      for (u32 s : cfg.successors[b])
        for (u32 r = 0; r < nregs; ++r)
          if (live_in[s][r]) out[r] = true;
      std::vector<bool> in = out;
      for (size_t i = cfg.block_end(b, n); i-- > cfg.block_start(b);) {
        const RInstr& instr = f.code[i];
        if (writes_dest(instr)) in[instr.a] = false;
        collect_reads(instr, reads);
        for (u32 r : reads) in[r] = true;
      }
      if (in != live_in[b]) { live_in[b] = in; changed = true; }
      block_out[b] = out;
    }
  }

  Liveness lv;
  lv.out.assign(n, {});
  for (size_t b = 0; b < nb; ++b) {
    std::vector<bool> live = block_out[b];
    for (size_t i = cfg.block_end(b, n); i-- > cfg.block_start(b);) {
      const RInstr& instr = f.code[i];
      lv.out[i] = live;
      if (writes_dest(instr)) live[instr.a] = false;
      collect_reads(instr, reads);
      for (u32 r : reads) live[r] = true;
    }
  }
  return lv;
}

// ---- Pass 3: peephole fusion ----------------------------------------------

/// Ops whose a field is a pure destination that can be renamed: excludes
/// ops that read r[a] (select family, memory.grow) and the calls, whose a
/// anchors the contiguous argument window.
bool dest_retargetable(ROp op) {
  // Atomics are optimization barriers: leave them untouched by every
  // rewrite, including destination renaming.
  if (rop_is_atomic(op)) return false;
  if (!writes_dest(RInstr{op}) || is_fused_select(op)) return false;
  switch (op) {
    case ROp::kSelect: case ROp::kV128Bitselect: case ROp::kMemoryGrow:
    case ROp::kCall: case ROp::kCallIndirect:
      return false;
    default:
      return true;
  }
}

u32 peephole_pass(RFunc& f, const Cfg& cfg, const Liveness& lv) {
  u32 changes = 0;
  const size_t n = f.code.size();
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    for (size_t i = cfg.block_start(b); i + 1 < cfg.block_end(b, n); ++i) {
      RInstr& a = f.code[i];
      RInstr& next = f.code[i + 1];
      // op t <- ... ; mov d, t  -->  op d <- ...   (t dead after the mov;
      // both in one block, so nothing can branch between them)
      if (next.op == ROp::kMov && next.b == a.a && next.a != a.a &&
          dest_retargetable(a.op) && !lv.live_after(i + 1, a.a)) {
        a.a = next.a;
        next = RInstr{ROp::kNop};
        ++changes;
        continue;
      }
      // cmp t <- x, y ; br_if t  -->  br_if_cmp x, y   (t dead after br_if)
      if ((next.op == ROp::kBrIf || next.op == ROp::kBrIfNot) &&
          next.a == a.a && writes_dest(a) && !lv.live_after(i + 1, a.a)) {
        if (auto fop = fused_brif(a.op, next.op == ROp::kBrIfNot)) {
          next = RInstr{*fop, a.b, a.c, 0, 0, next.imm};
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
        // eqz t <- x ; br_if t  -->  br_if_not x  (and the inverse)
        if (a.op == ROp::kI32Eqz) {
          next.op = next.op == ROp::kBrIf ? ROp::kBrIfNot : ROp::kBrIf;
          next.a = a.b;
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
      }
      // f64.mul t <- x, y ; f64.add d <- t, z  -->  fma d <- x, y, z
      // (and the f32 twin). Legal when the mul's value dies at the add:
      // either the add overwrites t, or t is not live past the add.
      bool is_f64_ma = a.op == ROp::kF64Mul && next.op == ROp::kF64Add;
      bool is_f32_ma = a.op == ROp::kF32Mul && next.op == ROp::kF32Add;
      if ((is_f64_ma || is_f32_ma) &&
          (next.a == a.a || !lv.live_after(i + 1, a.a))) {
        ROp fma = is_f64_ma ? ROp::kF64MulAdd : ROp::kF32MulAdd;
        u32 t = a.a;
        if (next.b == t && next.c != t) {
          next = RInstr{fma, next.a, a.b, a.c, next.c, 0};
          a = RInstr{ROp::kNop};
          ++changes;
        } else if (next.c == t && next.b != t) {
          next = RInstr{fma, next.a, a.b, a.c, next.b, 0};
          a = RInstr{ROp::kNop};
          ++changes;
        }
      }
    }
  }
  return changes;
}

// ---- Pass 4: superinstruction fusion ---------------------------------------
//
// Collapses common adjacent def-use chains into a single dispatch each.
// Every rewrite deletes the producing instruction(s) entirely, so the fused
// instruction reads its register operands with exactly the values the
// deleted producers saw; the liveness preconditions guarantee nothing else
// observed the deleted temporaries.

std::optional<ROp> fused_select(ROp cmp) {
  switch (cmp) {
    case ROp::kI32Eq: return ROp::kSelectI32Eq;
    case ROp::kI32Ne: return ROp::kSelectI32Ne;
    case ROp::kI32LtS: return ROp::kSelectI32LtS;
    case ROp::kI32LtU: return ROp::kSelectI32LtU;
    case ROp::kI32GtS: return ROp::kSelectI32GtS;
    case ROp::kI32GtU: return ROp::kSelectI32GtU;
    case ROp::kF64Lt: return ROp::kSelectF64Lt;
    case ROp::kF64Gt: return ROp::kSelectF64Gt;
    default: return std::nullopt;
  }
}

/// load t <- [addr]; op d <- x, t  -->  load_op d <- [addr], x
/// The v128 rows fuse only when OptOptions::simd is on (they are the hot
/// dispatches of the vectorized kernels, and the ablation flag must be able
/// to isolate them).
struct LoadOpFusion {
  ROp load, op, fused;
  bool simd;
};
constexpr LoadOpFusion kLoadOpTable[] = {
    {ROp::kI32Load, ROp::kI32Add, ROp::kI32LoadAdd, false},
    {ROp::kI64Load, ROp::kI64Add, ROp::kI64LoadAdd, false},
    {ROp::kF32Load, ROp::kF32Add, ROp::kF32LoadAdd, false},
    {ROp::kF64Load, ROp::kF64Add, ROp::kF64LoadAdd, false},
    {ROp::kF32Load, ROp::kF32Mul, ROp::kF32LoadMul, false},
    {ROp::kF64Load, ROp::kF64Mul, ROp::kF64LoadMul, false},
    {ROp::kV128Load, ROp::kI32x4Add, ROp::kI32x4LoadAdd, true},
    {ROp::kV128Load, ROp::kF32x4Add, ROp::kF32x4LoadAdd, true},
    {ROp::kV128Load, ROp::kF32x4Mul, ROp::kF32x4LoadMul, true},
    {ROp::kV128Load, ROp::kF64x2Add, ROp::kF64x2LoadAdd, true},
    {ROp::kV128Load, ROp::kF64x2Mul, ROp::kF64x2LoadMul, true},
};

/// op t <- x, y; store [addr] <- t  -->  op_store [addr] <- x, y
struct OpStoreFusion {
  ROp op, store, fused;
  bool simd;
};
constexpr OpStoreFusion kOpStoreTable[] = {
    {ROp::kI32Add, ROp::kI32Store, ROp::kI32AddStore, false},
    {ROp::kF32Add, ROp::kF32Store, ROp::kF32AddStore, false},
    {ROp::kF64Add, ROp::kF64Store, ROp::kF64AddStore, false},
    {ROp::kF64Mul, ROp::kF64Store, ROp::kF64MulStore, false},
    {ROp::kI32x4Add, ROp::kV128Store, ROp::kI32x4AddStore, true},
    {ROp::kF32x4Add, ROp::kV128Store, ROp::kF32x4AddStore, true},
    {ROp::kF64x2Add, ROp::kV128Store, ROp::kF64x2AddStore, true},
    {ROp::kF64x2Mul, ROp::kV128Store, ROp::kF64x2MulStore, true},
};

std::optional<ROp> indexed_load(ROp op, bool simd) {
  switch (op) {
    case ROp::kI32Load: return ROp::kI32LoadIx;
    case ROp::kI64Load: return ROp::kI64LoadIx;
    case ROp::kF32Load: return ROp::kF32LoadIx;
    case ROp::kF64Load: return ROp::kF64LoadIx;
    case ROp::kV128Load:
      if (simd) return ROp::kV128LoadIx;
      return std::nullopt;
    default: return std::nullopt;
  }
}

std::optional<ROp> indexed_store(ROp op, bool simd) {
  switch (op) {
    case ROp::kI32Store: return ROp::kI32StoreIx;
    case ROp::kI64Store: return ROp::kI64StoreIx;
    case ROp::kF32Store: return ROp::kF32StoreIx;
    case ROp::kF64Store: return ROp::kF64StoreIx;
    case ROp::kV128Store:
      if (simd) return ROp::kV128StoreIx;
      return std::nullopt;
    default: return std::nullopt;
  }
}

u32 superinstruction_pass(RFunc& f, const Cfg& cfg, const Liveness& lv,
                          bool simd) {
  u32 changes = 0;
  const size_t n = f.code.size();
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    const size_t bend = cfg.block_end(b, n);
    // --- 3-instruction window: indexed addressing with a scale ---
    // shl t1 <- idx, s ; add t2 <- base, t1 ; mem[t2 + imm] ...
    for (size_t i = cfg.block_start(b); i + 2 < bend; ++i) {
      RInstr& sh = f.code[i];
      RInstr& ad = f.code[i + 1];
      RInstr& m = f.code[i + 2];
      if (sh.op != ROp::kI32ShlImm || sh.imm > 4) continue;
      if (ad.op != ROp::kI32Add) continue;
      u32 t1 = sh.a;
      u32 base, idx = sh.b, shift = u32(sh.imm);
      if (ad.b == t1 && ad.c != t1) base = ad.c;
      else if (ad.c == t1 && ad.b != t1) base = ad.b;
      else continue;
      if (lv.live_after(i + 1, t1)) continue;
      u32 t2 = ad.a;
      // The load's destination may legally overwrite the address temp.
      if (auto lop = indexed_load(m.op, simd);
          lop && m.b == t2 && (m.a == t2 || !lv.live_after(i + 2, t2))) {
        m = RInstr{*lop, m.a, base, idx, shift, m.imm};
        sh = RInstr{ROp::kNop};
        ad = RInstr{ROp::kNop};
        ++changes;
        continue;
      }
      if (auto sop = indexed_store(m.op, simd);
          sop && m.a == t2 && m.b != t1 && m.b != t2 &&
          !lv.live_after(i + 2, t2)) {
        m = RInstr{*sop, base, m.b, idx, shift, m.imm};
        sh = RInstr{ROp::kNop};
        ad = RInstr{ROp::kNop};
        ++changes;
        continue;
      }
    }
    // --- 2-instruction windows ---
    for (size_t i = cfg.block_start(b); i + 1 < bend; ++i) {
      RInstr& a = f.code[i];
      RInstr& next = f.code[i + 1];
      if (a.op == ROp::kNop) continue;
      // add t2 <- x, y ; mem[t2 + imm]  -->  indexed access with shift 0.
      if (a.op == ROp::kI32Add) {
        u32 t2 = a.a;
        if (auto lop = indexed_load(next.op, simd);
            lop && next.b == t2 &&
            (next.a == t2 || !lv.live_after(i + 1, t2))) {
          next = RInstr{*lop, next.a, a.b, a.c, 0, next.imm};
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
        if (auto sop = indexed_store(next.op, simd);
            sop && next.a == t2 && next.b != t2 &&
            !lv.live_after(i + 1, t2)) {
          next = RInstr{*sop, a.b, next.b, a.c, 0, next.imm};
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
      }
      // load t <- [addr+imm] ; op d <- x, t  -->  load_op d <- [addr], x.
      // Skipped when the op is a float mul feeding an adjacent add: the
      // mul-add fusion (one dispatch, no memory operand on the critical
      // path) is the better form there.
      for (const auto& lo : kLoadOpTable) {
        if (a.op != lo.load || next.op != lo.op) continue;
        if (lo.simd && !simd) continue;
        u32 t = a.a;
        bool feeds_fma =
            (lo.op == ROp::kF64Mul || lo.op == ROp::kF32Mul) && i + 2 < bend &&
            f.code[i + 2].op ==
                (lo.op == ROp::kF64Mul ? ROp::kF64Add : ROp::kF32Add) &&
            (f.code[i + 2].b == next.a || f.code[i + 2].c == next.a);
        if (feeds_fma) break;
        // The op's destination may legally overwrite the loaded temp.
        if (next.a != t && lv.live_after(i + 1, t)) break;
        if (next.c == t && next.b != t) {
          next = RInstr{lo.fused, next.a, a.b, next.b, 0, a.imm};
          a = RInstr{ROp::kNop};
          ++changes;
        } else if (next.b == t && next.c != t) {
          next = RInstr{lo.fused, next.a, a.b, next.c, 0, a.imm};
          a = RInstr{ROp::kNop};
          ++changes;
        }
        break;
      }
      if (a.op == ROp::kNop) continue;
      // op t <- x, y ; store [addr+imm] <- t  -->  op_store.
      for (const auto& os : kOpStoreTable) {
        if (a.op != os.op || next.op != os.store) continue;
        if (os.simd && !simd) continue;
        u32 t = a.a;
        if (next.b != t || next.a == t) break;  // value must be t, addr not
        if (lv.live_after(i + 1, t)) break;
        next = RInstr{os.fused, next.a, a.b, a.c, 0, next.imm};
        a = RInstr{ROp::kNop};
        ++changes;
        break;
      }
      if (a.op == ROp::kNop) continue;
      // cmp t <- x, y ; select d, v, t  -->  select_cmp d, v, x, y.
      if (next.op == ROp::kSelect && next.c == a.a && writes_dest(a) &&
          next.a != a.a && next.b != a.a && !lv.live_after(i + 1, a.a)) {
        if (auto sel = fused_select(a.op)) {
          next = RInstr{*sel, next.a, next.b, a.b, a.c, 0};
          a = RInstr{ROp::kNop};
          ++changes;
        }
      }
    }
  }
  return changes;
}

// ---- Pass 4: DCE ------------------------------------------------------------

u32 dce_pass(RFunc& f, const Liveness& lv) {
  u32 changes = 0;
  for (size_t i = 0; i < f.code.size(); ++i) {
    RInstr& in = f.code[i];
    if (in.op == ROp::kNop) continue;
    if (is_pure(in.op) && writes_dest(in) && !lv.live_after(i, in.a)) {
      in = RInstr{ROp::kNop};
      ++changes;
    }
    if (in.op == ROp::kMov && in.a == in.b) {
      in = RInstr{ROp::kNop};
      ++changes;
    }
  }
  return changes;
}

// ---- Pass 5: branch threading + compaction --------------------------------

void thread_branches(RFunc& f) {
  auto final_target = [&](u32 t) {
    u32 seen = 0;
    while (t < f.code.size() && f.code[t].op == ROp::kBr && seen < 8) {
      t = u32(f.code[t].imm);
      ++seen;
    }
    return t;
  };
  for (auto& in : f.code) {
    if (is_branch(in.op) && in.op != ROp::kBrTable)
      in.imm = final_target(u32(in.imm));
  }
  for (auto& pool : f.br_pool)
    for (u32& t : pool) t = final_target(t);
}

// ---- Pass 7: bounds-check hoisting (loop versioning) -----------------------
//
// For a counted loop of the canonical shape
//     t:   br_if.i32.ge_s  i, n -> j+1     (loop exit, signed or unsigned)
//     ...  straight-line body (no other branches)
//     j:   br -> t                          (back edge)
// whose memory accesses are affine in the induction variable with
// compile-time coefficients (i, i<<s, base_const + i*c + k, ...), the loop
// is duplicated ("versioned"):
//
//     t:   mem.guard g = all iterations provably in bounds?
//          br_if_not g -> SLOW
//     FAST: the body with affine accesses rewritten to unchecked raw ops
//     SLOW: the original body, every access still checked
//
// The guard proves 0 <= i and coef*(n-1+step) + K <= byte_size() at loop
// entry; i only grows by positive steps and n is loop-invariant, so the
// bound covers every iteration, and memory.grow can only extend the valid
// range mid-loop. When the proof fails at runtime the original loop runs
// and an out-of-bounds access traps at exactly the original instruction —
// hoisting never moves a trap, it only removes checks that cannot fire.

struct HoistAccess {
  size_t index;   // instruction index within the body
  ROp raw_op;     // unchecked twin
  u64 coef;       // address = coef * i + kterm (u64, exact upper bound)
  u64 kterm;      // constant term + static offset + access size
};

struct HoistLoop {
  size_t head;       // index of the exit branch
  size_t backedge;   // index of the back-edge kBr
  bool head_unsigned;
  u32 counter, limit;
  u64 total_step;    // sum of positive counter increments per iteration
  u64 max_coef, max_k;
  std::vector<HoistAccess> accesses;
};

/// Symbolic value of a register inside one loop iteration.
struct AffineExpr {
  enum Kind { kUnknown, kConst, kAffine } kind = kUnknown;
  u64 coef = 0;  // multiple of the induction variable (kAffine)
  u64 off = 0;   // constant term
};

u32 access_size(ROp raw) {
  switch (raw) {
    case ROp::kI32LoadRaw: case ROp::kI32StoreRaw: case ROp::kF32LoadRaw:
    case ROp::kF32StoreRaw: case ROp::kI32LoadIxRaw: case ROp::kI32StoreIxRaw:
    case ROp::kF32LoadIxRaw: case ROp::kF32StoreIxRaw:
      return 4;
    case ROp::kV128LoadRaw: case ROp::kV128StoreRaw:
    case ROp::kV128LoadIxRaw: case ROp::kV128StoreIxRaw:
      return 16;
    default:
      return 8;
  }
}

std::optional<ROp> raw_load_twin(ROp op) {
  switch (op) {
    case ROp::kI32Load: return ROp::kI32LoadRaw;
    case ROp::kI64Load: return ROp::kI64LoadRaw;
    case ROp::kF32Load: return ROp::kF32LoadRaw;
    case ROp::kF64Load: return ROp::kF64LoadRaw;
    case ROp::kV128Load: return ROp::kV128LoadRaw;
    case ROp::kI32LoadIx: return ROp::kI32LoadIxRaw;
    case ROp::kI64LoadIx: return ROp::kI64LoadIxRaw;
    case ROp::kF32LoadIx: return ROp::kF32LoadIxRaw;
    case ROp::kF64LoadIx: return ROp::kF64LoadIxRaw;
    case ROp::kV128LoadIx: return ROp::kV128LoadIxRaw;
    default: return std::nullopt;
  }
}

std::optional<ROp> raw_store_twin(ROp op) {
  switch (op) {
    case ROp::kI32Store: return ROp::kI32StoreRaw;
    case ROp::kI64Store: return ROp::kI64StoreRaw;
    case ROp::kF32Store: return ROp::kF32StoreRaw;
    case ROp::kF64Store: return ROp::kF64StoreRaw;
    case ROp::kV128Store: return ROp::kV128StoreRaw;
    case ROp::kI32StoreIx: return ROp::kI32StoreIxRaw;
    case ROp::kI64StoreIx: return ROp::kI64StoreIxRaw;
    case ROp::kF32StoreIx: return ROp::kF32StoreIxRaw;
    case ROp::kF64StoreIx: return ROp::kF64StoreIxRaw;
    case ROp::kV128StoreIx: return ROp::kV128StoreIxRaw;
    default: return std::nullopt;
  }
}

constexpr u64 kHoistCoefCap = u64(1) << 31;
constexpr u64 kHoistKCap = u64(1) << 47;

/// Analyzes the body of a candidate loop; false to reject.
bool analyze_loop_body(const RFunc& f, HoistLoop& loop) {
  const u32 i_reg = loop.counter, n_reg = loop.limit;
  std::vector<AffineExpr> expr(f.num_regs);
  expr[i_reg] = {AffineExpr::kAffine, 1, 0};
  loop.total_step = 0;
  std::vector<u32> reads;

  auto eval_addr = [&](const RInstr& in, u32 base_reg,
                       bool indexed) -> std::optional<std::pair<u64, u64>> {
    AffineExpr e = base_reg == i_reg
                       ? AffineExpr{AffineExpr::kAffine, 1, 0}
                       : expr[base_reg];
    if (e.kind == AffineExpr::kUnknown) return std::nullopt;
    u64 coef = e.kind == AffineExpr::kAffine ? e.coef : 0;
    u64 off = e.off;
    if (indexed) {
      AffineExpr idx = in.c == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                     : expr[in.c];
      if (idx.kind == AffineExpr::kUnknown) return std::nullopt;
      u64 s = in.d;
      coef += (idx.kind == AffineExpr::kAffine ? idx.coef : 0) << s;
      off += idx.off << s;
    }
    if (coef >= kHoistCoefCap || off >= kHoistKCap || in.imm >= kHoistKCap)
      return std::nullopt;
    return std::make_pair(coef, off + in.imm);
  };

  for (size_t k = loop.head + 1; k < loop.backedge; ++k) {
    const RInstr& in = f.code[k];
    // Loops containing atomics are never versioned: the guarded fast copy
    // must not change how concurrent accesses interleave with checks.
    if (rop_is_atomic(in.op)) return false;
    // The induction increment: i += positive constant.
    if (in.op == ROp::kI32AddImm && in.a == i_reg) {
      if (in.b != i_reg) return false;  // i redefined from something else
      i32 step = i32(u32(in.imm));
      if (step <= 0) return false;
      loop.total_step += u64(u32(step));
      if (loop.total_step >= (u64(1) << 15)) return false;
      expr[i_reg] = {AffineExpr::kAffine, 1, expr[i_reg].off + u64(u32(step))};
      continue;
    }
    // Raw-able accesses: record the affine bound (or leave checked).
    std::optional<ROp> raw;
    u32 addr_reg = 0;
    bool indexed = false;
    if (auto lr = raw_load_twin(in.op)) {
      raw = lr;
      addr_reg = in.b;
      indexed = in.op == ROp::kI32LoadIx || in.op == ROp::kI64LoadIx ||
                in.op == ROp::kF32LoadIx || in.op == ROp::kF64LoadIx ||
                in.op == ROp::kV128LoadIx;
    } else if (auto sr = raw_store_twin(in.op)) {
      raw = sr;
      addr_reg = in.a;
      indexed = in.op == ROp::kI32StoreIx || in.op == ROp::kI64StoreIx ||
                in.op == ROp::kF32StoreIx || in.op == ROp::kF64StoreIx ||
                in.op == ROp::kV128StoreIx;
    }
    if (raw) {
      if (auto bound = eval_addr(in, addr_reg, indexed)) {
        u64 kterm = bound->second + access_size(*raw);
        if (kterm < kHoistKCap) {
          loop.accesses.push_back({k, *raw, bound->first, kterm});
          loop.max_coef = std::max(loop.max_coef, bound->first);
          loop.max_k = std::max(loop.max_k, kterm);
        }
      }
      // fall through to the register-kill handling below (loads write a)
    }
    // Track the symbolic state.
    if (writes_dest(in)) {
      if (in.a == i_reg) return false;  // non-increment write to i
      if (in.a == n_reg) return false;  // limit must be invariant
      switch (in.op) {
        case ROp::kMov:
          expr[in.a] = in.b == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                     : expr[in.b];
          break;
        case ROp::kConst:
          expr[in.a] = in.imm < kHoistKCap
                           ? AffineExpr{AffineExpr::kConst, 0, in.imm}
                           : AffineExpr{};
          break;
        case ROp::kI32AddImm: {
          AffineExpr s = in.b == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                       : expr[in.b];
          if (s.kind != AffineExpr::kUnknown && u32(in.imm) == in.imm &&
              s.off + in.imm < kHoistKCap)
            expr[in.a] = {s.kind, s.coef, s.off + in.imm};
          else
            expr[in.a] = {};
          break;
        }
        case ROp::kI32ShlImm: {
          AffineExpr s = in.b == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                       : expr[in.b];
          u64 sh = in.imm & 31;
          if (s.kind != AffineExpr::kUnknown && sh <= 16 &&
              (s.coef << sh) < kHoistCoefCap && (s.off << sh) < kHoistKCap)
            expr[in.a] = {s.kind, s.coef << sh, s.off << sh};
          else
            expr[in.a] = {};
          break;
        }
        case ROp::kI32MulImm: {
          AffineExpr s = in.b == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                       : expr[in.b];
          u64 m = u32(in.imm);
          if (s.kind != AffineExpr::kUnknown && m < (u64(1) << 16) &&
              s.coef * m < kHoistCoefCap && s.off * m < kHoistKCap)
            expr[in.a] = {s.kind, s.coef * m, s.off * m};
          else
            expr[in.a] = {};
          break;
        }
        case ROp::kI32Add: {
          AffineExpr x = in.b == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                       : expr[in.b];
          AffineExpr y = in.c == i_reg ? AffineExpr{AffineExpr::kAffine, 1, 0}
                                       : expr[in.c];
          if (x.kind != AffineExpr::kUnknown && y.kind != AffineExpr::kUnknown &&
              x.coef + y.coef < kHoistCoefCap && x.off + y.off < kHoistKCap) {
            bool affine =
                x.kind == AffineExpr::kAffine || y.kind == AffineExpr::kAffine;
            expr[in.a] = {affine ? AffineExpr::kAffine : AffineExpr::kConst,
                          x.coef + y.coef, x.off + y.off};
          } else {
            expr[in.a] = {};
          }
          break;
        }
        default:
          expr[in.a] = {};  // any other def: unknown
          break;
      }
    } else if (in.op == ROp::kCall || in.op == ROp::kCallIndirect) {
      if (in.a == i_reg || in.a == n_reg) return false;
      expr[in.a] = {};  // call result lands in r[a]
    }
  }
  if (loop.total_step == 0) return false;  // no induction step found
  return !loop.accesses.empty();
}

/// Finds candidate loops (canonical counted shape, straight-line body).
std::vector<HoistLoop> find_hoistable_loops(const RFunc& f) {
  std::vector<HoistLoop> out;
  const size_t n = f.code.size();
  // Every branch edge (source -> target), gathered once; each candidate's
  // external-entry check scans this list instead of re-walking the code.
  std::vector<std::pair<size_t, u32>> edges;
  for (size_t k = 0; k < n; ++k)
    for (u32 tgt : branch_targets(f, f.code[k])) edges.emplace_back(k, tgt);
  for (size_t t = 0; t < n; ++t) {
    const RInstr& head = f.code[t];
    if (head.op != ROp::kBrIfI32GeS && head.op != ROp::kBrIfI32GeU) continue;
    // Find the back edge: an unconditional br targeting t, with nothing but
    // straight-line code in between.
    size_t j = SIZE_MAX;
    for (size_t k = t + 1; k < n; ++k) {
      const RInstr& in = f.code[k];
      if (in.op == ROp::kBr && in.imm == t) {
        j = k;
        break;
      }
      if (is_branch(in.op) || is_terminator(in.op)) break;
    }
    if (j == SIZE_MAX) continue;
    // The exit target must lie outside the loop (branch threading may have
    // forwarded it past j + 1; that is fine — it gets remapped like any
    // other external target).
    if (head.imm > t && head.imm <= j) continue;
    // No branch from outside may enter (t, j]; entry is fallthrough-only.
    bool entered = false;
    for (const auto& [src, tgt] : edges) {
      if (src > t && src <= j) continue;  // in-loop (head/backedge branch)
      if (tgt > t && tgt <= j) {
        entered = true;
        break;
      }
    }
    if (entered) continue;
    HoistLoop loop;
    loop.head = t;
    loop.backedge = j;
    loop.head_unsigned = head.op == ROp::kBrIfI32GeU;
    loop.counter = head.a;
    loop.limit = head.b;
    loop.max_coef = 0;
    loop.max_k = 0;
    if (analyze_loop_body(f, loop)) {
      out.push_back(std::move(loop));
      t = j;  // candidates are disjoint (bodies are branch-free)
    }
  }
  return out;
}

u32 hoist_pass(RFunc& f) {
  std::vector<HoistLoop> loops = find_hoistable_loops(f);
  if (loops.empty()) return 0;
  const size_t n = f.code.size();
  const u32 guard_reg = f.num_regs;
  f.num_regs += 1;

  // new_plain(y): new index of old instruction y for code outside the
  // loops (guard + br_if_not + fast copy shift everything behind them).
  auto new_plain = [&](u64 y) {
    u64 shift = 0;
    for (const HoistLoop& lp : loops)
      if (lp.backedge < y) shift += (lp.backedge - lp.head + 1) + 2;
    return y + shift;
  };

  std::vector<RInstr> out;
  out.reserve(n + loops.size() * 16);
  size_t li = 0;
  for (size_t y = 0; y < n; ++y) {
    if (li < loops.size() && loops[li].head == y) {
      const HoistLoop& lp = loops[li];
      const size_t len = lp.backedge - lp.head + 1;
      const size_t guard_pos = out.size();
      const size_t fast_head = guard_pos + 2;
      const size_t slow_head = fast_head + len;
      const size_t exit_pos = new_plain(f.code[lp.head].imm);
      u32 dword = u32(lp.max_coef) | (lp.head_unsigned ? 0x80000000u : 0);
      u64 imm = (lp.total_step << 48) | lp.max_k;
      out.push_back(RInstr{ROp::kMemGuard, guard_reg, lp.limit, lp.counter,
                           dword, imm});
      out.push_back(RInstr{ROp::kBrIfNot, guard_reg, 0, 0, 0, u64(slow_head)});
      // Fast copy: affine accesses unchecked, branches retargeted.
      size_t acc = 0;
      for (size_t k = lp.head; k <= lp.backedge; ++k) {
        RInstr in = f.code[k];
        if (k == lp.head) {
          in.imm = exit_pos;
        } else if (k == lp.backedge) {
          in.imm = fast_head;
        } else {
          while (acc < lp.accesses.size() && lp.accesses[acc].index < k) ++acc;
          if (acc < lp.accesses.size() && lp.accesses[acc].index == k)
            in.op = lp.accesses[acc].raw_op;
        }
        out.push_back(in);
      }
      // Slow copy: the original body, checks intact.
      for (size_t k = lp.head; k <= lp.backedge; ++k) {
        RInstr in = f.code[k];
        if (k == lp.head) in.imm = exit_pos;
        else if (k == lp.backedge) in.imm = slow_head;
        out.push_back(in);
      }
      y = lp.backedge;  // consumed
      ++li;
      continue;
    }
    RInstr in = f.code[y];
    if (is_branch(in.op) && in.op != ROp::kBrTable)
      in.imm = new_plain(in.imm);
    out.push_back(in);
  }
  for (auto& pool : f.br_pool)
    for (u32& tgt : pool) tgt = u32(new_plain(tgt));
  f.code = std::move(out);
  return u32(loops.size());
}

void compact(RFunc& f) {
  const size_t n = f.code.size();
  std::vector<u32> remap(n + 1, 0);
  u32 next = 0;
  for (size_t i = 0; i < n; ++i) {
    remap[i] = next;
    if (f.code[i].op != ROp::kNop) ++next;
  }
  remap[n] = next;
  std::vector<RInstr> out;
  out.reserve(next);
  for (const auto& in : f.code)
    if (in.op != ROp::kNop) out.push_back(in);
  for (auto& in : out) {
    if (is_branch(in.op) && in.op != ROp::kBrTable) in.imm = remap[in.imm];
  }
  for (auto& pool : f.br_pool)
    for (u32& t : pool) t = remap[t];
  f.code = std::move(out);
}

}  // namespace

OptStats optimize_function(RFunc& f, const OptOptions& opts) {
  OptStats stats;
  stats.instrs_before = f.code.size();
  for (u32 round = 0; round < opts.max_rounds; ++round) {
    ++stats.rounds;
    Cfg cfg = build_cfg(f);
    u32 changes = local_forward_pass(f, cfg, opts.simd);
    Liveness live = compute_liveness(f, cfg);
    if (opts.fuse) {
      changes += peephole_pass(f, cfg, live);
      // Peephole invalidates liveness; recompute before the next pass.
      live = compute_liveness(f, cfg);
    }
    if (opts.fuse_super) {
      u32 fused = superinstruction_pass(f, cfg, live, opts.simd);
      changes += fused;
      stats.fused_super += fused;
      if (fused != 0) live = compute_liveness(f, cfg);
    }
    changes += dce_pass(f, live);
    thread_branches(f);
    compact(f);
    if (changes == 0) break;
  }
  // Bounds-check hoisting runs once, after the code shape has settled: it
  // relies on the fused loop form (imm increments, compare-and-branch
  // heads) and emits the guarded fast/slow loop copies verbatim.
  if (opts.hoist_bounds) stats.guards_hoisted = hoist_pass(f);
  stats.instrs_after = f.code.size();
  return stats;
}

OptStats optimize_module(RModule& m, const OptOptions& opts) {
  OptStats total;
  for (auto& f : m.funcs) {
    OptStats s = optimize_function(f, opts);
    total.instrs_before += s.instrs_before;
    total.instrs_after += s.instrs_after;
    total.fused_super += s.fused_super;
    total.guards_hoisted += s.guards_hoisted;
    total.rounds = std::max(total.rounds, s.rounds);
  }
  return total;
}

}  // namespace mpiwasm::rt
