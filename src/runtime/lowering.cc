#include "runtime/lowering.h"

#include <algorithm>

#include "wasm/decoder.h"

namespace mpiwasm::rt {
namespace {

using wasm::InstrView;
using wasm::Op;

/// Maps a plain Wasm opcode to its RegCode twin for uniform numeric ops.
/// Returns ROp::kCount for ops needing bespoke lowering.
ROp simple_rop(Op op) {
  switch (op) {
#define CASE1(W, R) case Op::k##W: return ROp::k##R;
    CASE1(I32Eqz, I32Eqz) CASE1(I32Eq, I32Eq) CASE1(I32Ne, I32Ne)
    CASE1(I32LtS, I32LtS) CASE1(I32LtU, I32LtU) CASE1(I32GtS, I32GtS)
    CASE1(I32GtU, I32GtU) CASE1(I32LeS, I32LeS) CASE1(I32LeU, I32LeU)
    CASE1(I32GeS, I32GeS) CASE1(I32GeU, I32GeU)
    CASE1(I64Eqz, I64Eqz) CASE1(I64Eq, I64Eq) CASE1(I64Ne, I64Ne)
    CASE1(I64LtS, I64LtS) CASE1(I64LtU, I64LtU) CASE1(I64GtS, I64GtS)
    CASE1(I64GtU, I64GtU) CASE1(I64LeS, I64LeS) CASE1(I64LeU, I64LeU)
    CASE1(I64GeS, I64GeS) CASE1(I64GeU, I64GeU)
    CASE1(F32Eq, F32Eq) CASE1(F32Ne, F32Ne) CASE1(F32Lt, F32Lt)
    CASE1(F32Gt, F32Gt) CASE1(F32Le, F32Le) CASE1(F32Ge, F32Ge)
    CASE1(F64Eq, F64Eq) CASE1(F64Ne, F64Ne) CASE1(F64Lt, F64Lt)
    CASE1(F64Gt, F64Gt) CASE1(F64Le, F64Le) CASE1(F64Ge, F64Ge)
    CASE1(I32Clz, I32Clz) CASE1(I32Ctz, I32Ctz) CASE1(I32Popcnt, I32Popcnt)
    CASE1(I32Add, I32Add) CASE1(I32Sub, I32Sub) CASE1(I32Mul, I32Mul)
    CASE1(I32DivS, I32DivS) CASE1(I32DivU, I32DivU) CASE1(I32RemS, I32RemS)
    CASE1(I32RemU, I32RemU) CASE1(I32And, I32And) CASE1(I32Or, I32Or)
    CASE1(I32Xor, I32Xor) CASE1(I32Shl, I32Shl) CASE1(I32ShrS, I32ShrS)
    CASE1(I32ShrU, I32ShrU) CASE1(I32Rotl, I32Rotl) CASE1(I32Rotr, I32Rotr)
    CASE1(I64Clz, I64Clz) CASE1(I64Ctz, I64Ctz) CASE1(I64Popcnt, I64Popcnt)
    CASE1(I64Add, I64Add) CASE1(I64Sub, I64Sub) CASE1(I64Mul, I64Mul)
    CASE1(I64DivS, I64DivS) CASE1(I64DivU, I64DivU) CASE1(I64RemS, I64RemS)
    CASE1(I64RemU, I64RemU) CASE1(I64And, I64And) CASE1(I64Or, I64Or)
    CASE1(I64Xor, I64Xor) CASE1(I64Shl, I64Shl) CASE1(I64ShrS, I64ShrS)
    CASE1(I64ShrU, I64ShrU) CASE1(I64Rotl, I64Rotl) CASE1(I64Rotr, I64Rotr)
    CASE1(F32Abs, F32Abs) CASE1(F32Neg, F32Neg) CASE1(F32Ceil, F32Ceil)
    CASE1(F32Floor, F32Floor) CASE1(F32Trunc, F32Trunc)
    CASE1(F32Nearest, F32Nearest) CASE1(F32Sqrt, F32Sqrt)
    CASE1(F32Add, F32Add) CASE1(F32Sub, F32Sub) CASE1(F32Mul, F32Mul)
    CASE1(F32Div, F32Div) CASE1(F32Min, F32Min) CASE1(F32Max, F32Max)
    CASE1(F32Copysign, F32Copysign)
    CASE1(F64Abs, F64Abs) CASE1(F64Neg, F64Neg) CASE1(F64Ceil, F64Ceil)
    CASE1(F64Floor, F64Floor) CASE1(F64Trunc, F64Trunc)
    CASE1(F64Nearest, F64Nearest) CASE1(F64Sqrt, F64Sqrt)
    CASE1(F64Add, F64Add) CASE1(F64Sub, F64Sub) CASE1(F64Mul, F64Mul)
    CASE1(F64Div, F64Div) CASE1(F64Min, F64Min) CASE1(F64Max, F64Max)
    CASE1(F64Copysign, F64Copysign)
    CASE1(I32WrapI64, I32WrapI64)
    CASE1(I32TruncF32S, I32TruncF32S) CASE1(I32TruncF32U, I32TruncF32U)
    CASE1(I32TruncF64S, I32TruncF64S) CASE1(I32TruncF64U, I32TruncF64U)
    CASE1(I64ExtendI32S, I64ExtendI32S) CASE1(I64ExtendI32U, I64ExtendI32U)
    CASE1(I64TruncF32S, I64TruncF32S) CASE1(I64TruncF32U, I64TruncF32U)
    CASE1(I64TruncF64S, I64TruncF64S) CASE1(I64TruncF64U, I64TruncF64U)
    CASE1(F32ConvertI32S, F32ConvertI32S) CASE1(F32ConvertI32U, F32ConvertI32U)
    CASE1(F32ConvertI64S, F32ConvertI64S) CASE1(F32ConvertI64U, F32ConvertI64U)
    CASE1(F32DemoteF64, F32DemoteF64)
    CASE1(F64ConvertI32S, F64ConvertI32S) CASE1(F64ConvertI32U, F64ConvertI32U)
    CASE1(F64ConvertI64S, F64ConvertI64S) CASE1(F64ConvertI64U, F64ConvertI64U)
    CASE1(F64PromoteF32, F64PromoteF32)
    CASE1(I32ReinterpretF32, I32ReinterpretF32)
    CASE1(I64ReinterpretF64, I64ReinterpretF64)
    CASE1(F32ReinterpretI32, F32ReinterpretI32)
    CASE1(F64ReinterpretI64, F64ReinterpretI64)
    CASE1(I32Extend8S, I32Extend8S) CASE1(I32Extend16S, I32Extend16S)
    CASE1(I64Extend8S, I64Extend8S) CASE1(I64Extend16S, I64Extend16S)
    CASE1(I64Extend32S, I64Extend32S)
    CASE1(I8x16Splat, I8x16Splat) CASE1(I16x8Splat, I16x8Splat)
    CASE1(I32x4Splat, I32x4Splat)
    CASE1(I64x2Splat, I64x2Splat) CASE1(F32x4Splat, F32x4Splat)
    CASE1(F64x2Splat, F64x2Splat)
    CASE1(I8x16Swizzle, I8x16Swizzle)
    CASE1(I8x16Eq, I8x16Eq) CASE1(I8x16Ne, I8x16Ne)
    CASE1(I8x16LtS, I8x16LtS) CASE1(I8x16LtU, I8x16LtU)
    CASE1(I8x16GtS, I8x16GtS) CASE1(I8x16GtU, I8x16GtU)
    CASE1(I8x16LeS, I8x16LeS) CASE1(I8x16LeU, I8x16LeU)
    CASE1(I8x16GeS, I8x16GeS) CASE1(I8x16GeU, I8x16GeU)
    CASE1(I16x8Eq, I16x8Eq) CASE1(I16x8Ne, I16x8Ne)
    CASE1(I16x8LtS, I16x8LtS) CASE1(I16x8LtU, I16x8LtU)
    CASE1(I16x8GtS, I16x8GtS) CASE1(I16x8GtU, I16x8GtU)
    CASE1(I16x8LeS, I16x8LeS) CASE1(I16x8LeU, I16x8LeU)
    CASE1(I16x8GeS, I16x8GeS) CASE1(I16x8GeU, I16x8GeU)
    CASE1(I32x4Eq, I32x4Eq) CASE1(I32x4Ne, I32x4Ne)
    CASE1(I32x4LtS, I32x4LtS) CASE1(I32x4LtU, I32x4LtU)
    CASE1(I32x4GtS, I32x4GtS) CASE1(I32x4GtU, I32x4GtU)
    CASE1(I32x4LeS, I32x4LeS) CASE1(I32x4LeU, I32x4LeU)
    CASE1(I32x4GeS, I32x4GeS) CASE1(I32x4GeU, I32x4GeU)
    CASE1(F32x4Eq, F32x4Eq) CASE1(F32x4Ne, F32x4Ne) CASE1(F32x4Lt, F32x4Lt)
    CASE1(F32x4Gt, F32x4Gt) CASE1(F32x4Le, F32x4Le) CASE1(F32x4Ge, F32x4Ge)
    CASE1(F64x2Eq, F64x2Eq) CASE1(F64x2Ne, F64x2Ne) CASE1(F64x2Lt, F64x2Lt)
    CASE1(F64x2Gt, F64x2Gt) CASE1(F64x2Le, F64x2Le) CASE1(F64x2Ge, F64x2Ge)
    CASE1(V128Not, V128Not) CASE1(V128And, V128And)
    CASE1(V128AndNot, V128AndNot)
    CASE1(V128Or, V128Or) CASE1(V128Xor, V128Xor) CASE1(V128AnyTrue, V128AnyTrue)
    CASE1(I8x16Abs, I8x16Abs) CASE1(I8x16Neg, I8x16Neg)
    CASE1(I8x16AllTrue, I8x16AllTrue)
    CASE1(I8x16Add, I8x16Add) CASE1(I8x16Sub, I8x16Sub)
    CASE1(I16x8Abs, I16x8Abs) CASE1(I16x8Neg, I16x8Neg)
    CASE1(I16x8AllTrue, I16x8AllTrue)
    CASE1(I16x8Add, I16x8Add) CASE1(I16x8Sub, I16x8Sub)
    CASE1(I16x8Mul, I16x8Mul)
    CASE1(I32x4Abs, I32x4Abs) CASE1(I32x4Neg, I32x4Neg)
    CASE1(I32x4AllTrue, I32x4AllTrue)
    CASE1(I32x4Shl, I32x4Shl) CASE1(I32x4ShrS, I32x4ShrS)
    CASE1(I32x4ShrU, I32x4ShrU)
    CASE1(I32x4Add, I32x4Add) CASE1(I32x4Sub, I32x4Sub) CASE1(I32x4Mul, I32x4Mul)
    CASE1(I32x4MinS, I32x4MinS) CASE1(I32x4MinU, I32x4MinU)
    CASE1(I32x4MaxS, I32x4MaxS) CASE1(I32x4MaxU, I32x4MaxU)
    CASE1(I64x2Abs, I64x2Abs) CASE1(I64x2Neg, I64x2Neg)
    CASE1(I64x2AllTrue, I64x2AllTrue)
    CASE1(I64x2Shl, I64x2Shl) CASE1(I64x2ShrS, I64x2ShrS)
    CASE1(I64x2ShrU, I64x2ShrU)
    CASE1(I64x2Add, I64x2Add) CASE1(I64x2Sub, I64x2Sub) CASE1(I64x2Mul, I64x2Mul)
    CASE1(F32x4Abs, F32x4Abs) CASE1(F32x4Neg, F32x4Neg)
    CASE1(F32x4Sqrt, F32x4Sqrt)
    CASE1(F32x4Add, F32x4Add) CASE1(F32x4Sub, F32x4Sub) CASE1(F32x4Mul, F32x4Mul)
    CASE1(F32x4Div, F32x4Div)
    CASE1(F32x4Min, F32x4Min) CASE1(F32x4Max, F32x4Max)
    CASE1(F32x4Pmin, F32x4Pmin) CASE1(F32x4Pmax, F32x4Pmax)
    CASE1(F64x2Abs, F64x2Abs) CASE1(F64x2Neg, F64x2Neg)
    CASE1(F64x2Sqrt, F64x2Sqrt)
    CASE1(F64x2Add, F64x2Add) CASE1(F64x2Sub, F64x2Sub) CASE1(F64x2Mul, F64x2Mul)
    CASE1(F64x2Div, F64x2Div)
    CASE1(F64x2Min, F64x2Min) CASE1(F64x2Max, F64x2Max)
    CASE1(F64x2Pmin, F64x2Pmin) CASE1(F64x2Pmax, F64x2Pmax)
#undef CASE1
    default: return ROp::kCount;
  }
}

bool is_unop(Op op) {
  switch (op) {
    case Op::kI32Eqz: case Op::kI64Eqz:
    case Op::kI32Clz: case Op::kI32Ctz: case Op::kI32Popcnt:
    case Op::kI64Clz: case Op::kI64Ctz: case Op::kI64Popcnt:
    case Op::kF32Abs: case Op::kF32Neg: case Op::kF32Ceil: case Op::kF32Floor:
    case Op::kF32Trunc: case Op::kF32Nearest: case Op::kF32Sqrt:
    case Op::kF64Abs: case Op::kF64Neg: case Op::kF64Ceil: case Op::kF64Floor:
    case Op::kF64Trunc: case Op::kF64Nearest: case Op::kF64Sqrt:
    case Op::kI32WrapI64: case Op::kI32TruncF32S: case Op::kI32TruncF32U:
    case Op::kI32TruncF64S: case Op::kI32TruncF64U:
    case Op::kI64ExtendI32S: case Op::kI64ExtendI32U:
    case Op::kI64TruncF32S: case Op::kI64TruncF32U:
    case Op::kI64TruncF64S: case Op::kI64TruncF64U:
    case Op::kF32ConvertI32S: case Op::kF32ConvertI32U:
    case Op::kF32ConvertI64S: case Op::kF32ConvertI64U: case Op::kF32DemoteF64:
    case Op::kF64ConvertI32S: case Op::kF64ConvertI32U:
    case Op::kF64ConvertI64S: case Op::kF64ConvertI64U: case Op::kF64PromoteF32:
    case Op::kI32ReinterpretF32: case Op::kI64ReinterpretF64:
    case Op::kF32ReinterpretI32: case Op::kF64ReinterpretI64:
    case Op::kI32Extend8S: case Op::kI32Extend16S:
    case Op::kI64Extend8S: case Op::kI64Extend16S: case Op::kI64Extend32S:
    case Op::kI8x16Splat: case Op::kI16x8Splat: case Op::kI32x4Splat:
    case Op::kI64x2Splat: case Op::kF32x4Splat: case Op::kF64x2Splat:
    case Op::kV128Not: case Op::kV128AnyTrue:
    case Op::kI8x16Abs: case Op::kI8x16Neg: case Op::kI8x16AllTrue:
    case Op::kI16x8Abs: case Op::kI16x8Neg: case Op::kI16x8AllTrue:
    case Op::kI32x4Abs: case Op::kI32x4Neg: case Op::kI32x4AllTrue:
    case Op::kI64x2Abs: case Op::kI64x2Neg: case Op::kI64x2AllTrue:
    case Op::kF32x4Abs: case Op::kF32x4Neg: case Op::kF32x4Sqrt:
    case Op::kF64x2Abs: case Op::kF64x2Neg: case Op::kF64x2Sqrt:
      return true;
    default:
      return false;
  }
}

ROp load_rop(Op op) {
  switch (op) {
    case Op::kI32Load: return ROp::kI32Load;
    case Op::kI64Load: return ROp::kI64Load;
    case Op::kF32Load: return ROp::kF32Load;
    case Op::kF64Load: return ROp::kF64Load;
    case Op::kI32Load8S: return ROp::kI32Load8S;
    case Op::kI32Load8U: return ROp::kI32Load8U;
    case Op::kI32Load16S: return ROp::kI32Load16S;
    case Op::kI32Load16U: return ROp::kI32Load16U;
    case Op::kI64Load8S: return ROp::kI64Load8S;
    case Op::kI64Load8U: return ROp::kI64Load8U;
    case Op::kI64Load16S: return ROp::kI64Load16S;
    case Op::kI64Load16U: return ROp::kI64Load16U;
    case Op::kI64Load32S: return ROp::kI64Load32S;
    case Op::kI64Load32U: return ROp::kI64Load32U;
    case Op::kV128Load: return ROp::kV128Load;
    case Op::kV128Load32Splat: return ROp::kV128Load32Splat;
    case Op::kV128Load64Splat: return ROp::kV128Load64Splat;
    default: return ROp::kCount;
  }
}

ROp store_rop(Op op) {
  switch (op) {
    case Op::kI32Store: return ROp::kI32Store;
    case Op::kI64Store: return ROp::kI64Store;
    case Op::kF32Store: return ROp::kF32Store;
    case Op::kF64Store: return ROp::kF64Store;
    case Op::kI32Store8: return ROp::kI32Store8;
    case Op::kI32Store16: return ROp::kI32Store16;
    case Op::kI64Store8: return ROp::kI64Store8;
    case Op::kI64Store16: return ROp::kI64Store16;
    case Op::kI64Store32: return ROp::kI64Store32;
    case Op::kV128Store: return ROp::kV128Store;
    default: return ROp::kCount;
  }
}

ROp lane_rop(Op op) {
  switch (op) {
    case Op::kI8x16ExtractLaneS: return ROp::kI8x16ExtractLaneS;
    case Op::kI8x16ExtractLaneU: return ROp::kI8x16ExtractLaneU;
    case Op::kI16x8ExtractLaneS: return ROp::kI16x8ExtractLaneS;
    case Op::kI16x8ExtractLaneU: return ROp::kI16x8ExtractLaneU;
    case Op::kI32x4ExtractLane: return ROp::kI32x4ExtractLane;
    case Op::kI64x2ExtractLane: return ROp::kI64x2ExtractLane;
    case Op::kF32x4ExtractLane: return ROp::kF32x4ExtractLane;
    case Op::kF64x2ExtractLane: return ROp::kF64x2ExtractLane;
    default: return ROp::kCount;
  }
}

/// Replace-lane ops: (v128, scalar) -> v128 with the lane in the imm.
ROp replace_lane_rop(Op op) {
  switch (op) {
    case Op::kI8x16ReplaceLane: return ROp::kI8x16ReplaceLane;
    case Op::kI16x8ReplaceLane: return ROp::kI16x8ReplaceLane;
    case Op::kI32x4ReplaceLane: return ROp::kI32x4ReplaceLane;
    case Op::kI64x2ReplaceLane: return ROp::kI64x2ReplaceLane;
    case Op::kF32x4ReplaceLane: return ROp::kF32x4ReplaceLane;
    case Op::kF64x2ReplaceLane: return ROp::kF64x2ReplaceLane;
    default: return ROp::kCount;
  }
}

/// 0xFE atomic ops with a memarg (loads/stores/rmw/cmpxchg); ROp names
/// mirror the Wasm names exactly. wait/notify/fence lower separately.
ROp atomic_rop(Op op) {
  switch (op) {
#define ACASE(N) case Op::k##N: return ROp::k##N;
    ACASE(I32AtomicLoad) ACASE(I64AtomicLoad)
    ACASE(I32AtomicLoad8U) ACASE(I32AtomicLoad16U)
    ACASE(I64AtomicLoad8U) ACASE(I64AtomicLoad16U) ACASE(I64AtomicLoad32U)
    ACASE(I32AtomicStore) ACASE(I64AtomicStore)
    ACASE(I32AtomicStore8) ACASE(I32AtomicStore16)
    ACASE(I64AtomicStore8) ACASE(I64AtomicStore16) ACASE(I64AtomicStore32)
    ACASE(I32AtomicRmwAdd) ACASE(I64AtomicRmwAdd)
    ACASE(I32AtomicRmw8AddU) ACASE(I32AtomicRmw16AddU)
    ACASE(I64AtomicRmw8AddU) ACASE(I64AtomicRmw16AddU)
    ACASE(I64AtomicRmw32AddU)
    ACASE(I32AtomicRmwSub) ACASE(I64AtomicRmwSub)
    ACASE(I32AtomicRmw8SubU) ACASE(I32AtomicRmw16SubU)
    ACASE(I64AtomicRmw8SubU) ACASE(I64AtomicRmw16SubU)
    ACASE(I64AtomicRmw32SubU)
    ACASE(I32AtomicRmwAnd) ACASE(I64AtomicRmwAnd)
    ACASE(I32AtomicRmw8AndU) ACASE(I32AtomicRmw16AndU)
    ACASE(I64AtomicRmw8AndU) ACASE(I64AtomicRmw16AndU)
    ACASE(I64AtomicRmw32AndU)
    ACASE(I32AtomicRmwOr) ACASE(I64AtomicRmwOr)
    ACASE(I32AtomicRmw8OrU) ACASE(I32AtomicRmw16OrU)
    ACASE(I64AtomicRmw8OrU) ACASE(I64AtomicRmw16OrU)
    ACASE(I64AtomicRmw32OrU)
    ACASE(I32AtomicRmwXor) ACASE(I64AtomicRmwXor)
    ACASE(I32AtomicRmw8XorU) ACASE(I32AtomicRmw16XorU)
    ACASE(I64AtomicRmw8XorU) ACASE(I64AtomicRmw16XorU)
    ACASE(I64AtomicRmw32XorU)
    ACASE(I32AtomicRmwXchg) ACASE(I64AtomicRmwXchg)
    ACASE(I32AtomicRmw8XchgU) ACASE(I32AtomicRmw16XchgU)
    ACASE(I64AtomicRmw8XchgU) ACASE(I64AtomicRmw16XchgU)
    ACASE(I64AtomicRmw32XchgU)
    ACASE(I32AtomicRmwCmpxchg) ACASE(I64AtomicRmwCmpxchg)
    ACASE(I32AtomicRmw8CmpxchgU) ACASE(I32AtomicRmw16CmpxchgU)
    ACASE(I64AtomicRmw8CmpxchgU) ACASE(I64AtomicRmw16CmpxchgU)
    ACASE(I64AtomicRmw32CmpxchgU)
#undef ACASE
    default: return ROp::kCount;
  }
}

bool atomic_is_load(Op op) {
  return u16(op) >= u16(Op::kI32AtomicLoad) &&
         u16(op) <= u16(Op::kI64AtomicLoad32U);
}
bool atomic_is_store(Op op) {
  return u16(op) >= u16(Op::kI32AtomicStore) &&
         u16(op) <= u16(Op::kI64AtomicStore32);
}
bool atomic_is_cmpxchg(Op op) {
  return u16(op) >= u16(Op::kI32AtomicRmwCmpxchg) &&
         u16(op) <= u16(Op::kI64AtomicRmw32CmpxchgU);
}

/// Binops the lowerer can fuse with an immediately preceding constant into
/// an *Imm form at emission time — one instruction instead of two on every
/// tier, including Baseline (the optimizer would only recover this at the
/// Optimizing tier).
ROp lowering_imm_fused(Op op) {
  switch (op) {
    case Op::kI32Add: return ROp::kI32AddImm;
    case Op::kI64Add: return ROp::kI64AddImm;
    case Op::kI32Shl: return ROp::kI32ShlImm;
    case Op::kI32ShrU: return ROp::kI32ShrUImm;
    case Op::kI32And: return ROp::kI32AndImm;
    case Op::kI32Mul: return ROp::kI32MulImm;
    default: return ROp::kCount;
  }
}

class FuncLowering {
 public:
  FuncLowering(const wasm::Module& m, u32 defined_index)
      : m_(m), body_(m.bodies.at(defined_index)) {
    const wasm::FuncType& ft =
        m.func_type(m.num_imported_funcs() + defined_index);
    out_.num_params = u32(ft.params.size());
    out_.num_locals = out_.num_params + u32(body_.locals.size());
    out_.has_result = !ft.results.empty();
    L_ = out_.num_locals;
  }

  RFunc run() {
    push_frame(Frame::kBlock, out_.has_result, /*entered_live=*/true);
    wasm::InstrReader reader({body_.code.data(), body_.code.size()});
    while (!reader.done()) {
      InstrView in = reader.next();
      if (frames_.empty()) fatal("lowering: instructions after function end");
      step(in);
    }
    MW_CHECK(frames_.empty(), "lowering: unbalanced control frames");
    out_.num_regs = L_ + max_h_ + 1;
    return std::move(out_);
  }

 private:
  struct Frame {
    enum Kind { kBlock, kLoop, kIf } kind = kBlock;
    bool has_result = false;
    bool entered_live = true;
    u32 entry_height = 0;
    size_t loop_head = 0;              // kLoop: backward target
    std::vector<size_t> br_fixups;     // forward branches to this label
    size_t else_fixup = SIZE_MAX;      // kIf: BrIfNot over the then-branch
    bool saw_else = false;
  };

  u32 reg(u32 height) const { return L_ + height; }
  u32 top() const { return reg(h_ - 1); }

  size_t emit(ROp op, u32 a = 0, u32 b = 0, u32 c = 0, u64 imm = 0, u32 d = 0) {
    out_.code.push_back(RInstr{op, a, b, c, d, imm});
    return out_.code.size() - 1;
  }

  void push(u32 n = 1) {
    h_ += n;
    max_h_ = std::max(max_h_, h_);
  }
  void pop(u32 n = 1) {
    MW_CHECK(h_ >= n, "lowering: stack underflow");
    h_ -= n;
  }

  void push_frame(Frame::Kind kind, bool has_result, bool entered_live) {
    Frame f;
    f.kind = kind;
    f.has_result = has_result;
    f.entered_live = entered_live;
    f.entry_height = h_;
    if (kind == Frame::kLoop) f.loop_head = out_.code.size();
    frames_.push_back(std::move(f));
  }

  Frame& frame_at_depth(u32 depth) {
    MW_CHECK(depth < frames_.size(), "lowering: bad branch depth");
    return frames_[frames_.size() - 1 - depth];
  }

  /// Emits the value move + jump for a branch to `depth`. Returns nothing;
  /// forward targets get fixups, loops jump backward immediately.
  void emit_branch(u32 depth) {
    Frame& f = frame_at_depth(depth);
    if (f.kind == Frame::kLoop) {
      // Loop labels take no values (block params unsupported).
      emit(ROp::kBr, 0, 0, 0, f.loop_head);
      return;
    }
    if (f.has_result) {
      u32 dst = reg(f.entry_height);
      u32 src = top();
      if (dst != src) emit(ROp::kMov, dst, src);
    }
    size_t pos = emit(ROp::kBr);
    f.br_fixups.push_back(pos);
  }

  void patch(size_t pos, size_t target) { out_.code[pos].imm = target; }

  void step(const InstrView& in);

  const wasm::Module& m_;
  const wasm::FuncBody& body_;
  RFunc out_;
  u32 L_ = 0;
  u32 h_ = 0;
  u32 max_h_ = 0;
  bool live_ = true;
  // Index of a kConst emitted by the immediately preceding step (SIZE_MAX
  // otherwise); enables const+binop / const+local.set fusion at emission.
  size_t pending_const_ = SIZE_MAX;
  std::vector<Frame> frames_;
};

void FuncLowering::step(const InstrView& in) {
  const size_t pending_const = pending_const_;
  pending_const_ = SIZE_MAX;
  // Dead-code handling: after br/return/unreachable the validator allows
  // stack-polymorphic code; we skip emission but keep frame bookkeeping.
  if (!live_) {
    switch (in.op) {
      case Op::kBlock: case Op::kLoop: case Op::kIf:
        push_frame(in.op == Op::kLoop   ? Frame::kLoop
                   : in.op == Op::kIf   ? Frame::kIf
                                        : Frame::kBlock,
                   in.block_type != wasm::kBlockTypeEmpty,
                   /*entered_live=*/false);
        return;
      case Op::kElse: {
        Frame& f = frames_.back();
        MW_CHECK(f.kind == Frame::kIf, "else without if");
        f.saw_else = true;
        if (f.entered_live) {
          // The `if` was executed; its false edge lands here.
          if (f.else_fixup != SIZE_MAX) {
            patch(f.else_fixup, out_.code.size());
            f.else_fixup = SIZE_MAX;
          }
          h_ = f.entry_height;
          live_ = true;
        }
        return;
      }
      case Op::kEnd: {
        Frame f = frames_.back();
        frames_.pop_back();
        h_ = f.entry_height + (f.has_result ? 1 : 0);
        max_h_ = std::max(max_h_, h_);
        if (f.entered_live) {
          // Forward branches (or the if's false edge) can land here.
          for (size_t pos : f.br_fixups) patch(pos, out_.code.size());
          if (f.else_fixup != SIZE_MAX) patch(f.else_fixup, out_.code.size());
          if (frames_.empty()) {
            // Function-level end reached via only branches.
            if (out_.has_result) emit(ROp::kReturn, reg(0));
            else emit(ROp::kReturnVoid);
          }
          live_ = true;
        } else if (frames_.empty()) {
          fatal("lowering: dead function end in dead frame");
        }
        return;
      }
      default:
        return;  // skip all other dead instructions
    }
  }

  switch (in.op) {
    case Op::kUnreachable:
      emit(ROp::kUnreachable);
      live_ = false;
      break;
    case Op::kNop:
      break;
    case Op::kBlock:
      push_frame(Frame::kBlock, in.block_type != wasm::kBlockTypeEmpty, true);
      break;
    case Op::kLoop:
      push_frame(Frame::kLoop, in.block_type != wasm::kBlockTypeEmpty, true);
      break;
    case Op::kIf: {
      u32 cond = top();
      pop();
      push_frame(Frame::kIf, in.block_type != wasm::kBlockTypeEmpty, true);
      frames_.back().else_fixup = emit(ROp::kBrIfNot, cond);
      break;
    }
    case Op::kElse: {
      Frame& f = frames_.back();
      MW_CHECK(f.kind == Frame::kIf, "else without if");
      f.saw_else = true;
      // Then-branch jumps over the else-branch.
      f.br_fixups.push_back(emit(ROp::kBr));
      patch(f.else_fixup, out_.code.size());
      f.else_fixup = SIZE_MAX;
      h_ = f.entry_height;
      break;
    }
    case Op::kEnd: {
      Frame f = frames_.back();
      frames_.pop_back();
      for (size_t pos : f.br_fixups) patch(pos, out_.code.size());
      if (f.else_fixup != SIZE_MAX) patch(f.else_fixup, out_.code.size());
      h_ = f.entry_height + (f.has_result ? 1 : 0);
      max_h_ = std::max(max_h_, h_);
      if (frames_.empty()) {
        if (out_.has_result) emit(ROp::kReturn, reg(0));
        else emit(ROp::kReturnVoid);
      }
      break;
    }
    case Op::kBr:
      emit_branch(in.idx());
      live_ = false;
      break;
    case Op::kBrIf: {
      u32 cond = top();
      pop();
      Frame& f = frame_at_depth(in.idx());
      bool needs_move =
          f.kind != Frame::kLoop && f.has_result && reg(f.entry_height) != top();
      if (f.kind != Frame::kLoop && f.has_result && needs_move) {
        // Inverted lowering: skip the move+jump when the branch is not taken.
        size_t skip = emit(ROp::kBrIfNot, cond);
        emit(ROp::kMov, reg(f.entry_height), top());
        f.br_fixups.push_back(emit(ROp::kBr));
        patch(skip, out_.code.size());
      } else if (f.kind == Frame::kLoop) {
        emit(ROp::kBrIf, cond, 0, 0, f.loop_head);
      } else {
        size_t pos = emit(ROp::kBrIf, cond);
        f.br_fixups.push_back(pos);
      }
      break;
    }
    case Op::kBrTable: {
      u32 idx_reg = top();
      pop();
      // Trampolines: BrTable jumps to one per target; each fixes up values
      // for its own destination frame.
      std::vector<u32> all = in.br_targets;
      all.push_back(in.br_default);
      u32 pool_index = u32(out_.br_pool.size());
      out_.br_pool.emplace_back();
      size_t table_pos = emit(ROp::kBrTable, idx_reg, 0, 0, pool_index);
      (void)table_pos;
      for (u32 depth : all) {
        out_.br_pool[pool_index].push_back(u32(out_.code.size()));
        emit_branch(depth);
      }
      live_ = false;
      break;
    }
    case Op::kReturn:
      if (out_.has_result) emit(ROp::kReturn, top());
      else emit(ROp::kReturnVoid);
      live_ = false;
      break;
    case Op::kCall: {
      u32 fi = in.idx();
      const wasm::FuncType& ft = m_.func_type(fi);
      u32 nargs = u32(ft.params.size());
      pop(nargs);
      u32 base = reg(h_);
      emit(ROp::kCall, base, nargs, 0, fi);
      if (!ft.results.empty()) push();
      break;
    }
    case Op::kCallIndirect: {
      const wasm::FuncType& ft = m_.types.at(in.indirect_type_index);
      u32 nargs = u32(ft.params.size());
      pop(1 + nargs);
      u32 base = reg(h_);
      emit(ROp::kCallIndirect, base, nargs, 0, in.indirect_type_index);
      if (!ft.results.empty()) push();
      break;
    }
    case Op::kDrop:
      pop();
      break;
    case Op::kSelect: {
      u32 c = top();           // condition
      u32 b = reg(h_ - 2);     // value if cond == 0
      u32 a = reg(h_ - 3);     // value if cond != 0, also destination
      pop(2);
      emit(ROp::kSelect, a, b, c);
      break;
    }
    case Op::kLocalGet:
      emit(ROp::kMov, reg(h_), in.idx());
      push();
      break;
    case Op::kLocalSet:
      // const t ; local.set x  -->  const straight into x.
      if (pending_const == out_.code.size() - 1 &&
          out_.code.back().op == ROp::kConst && out_.code.back().a == top()) {
        out_.code.back().a = in.idx();
        pop();
        break;
      }
      emit(ROp::kMov, in.idx(), top());
      pop();
      break;
    case Op::kLocalTee:
      emit(ROp::kMov, in.idx(), top());
      break;
    case Op::kGlobalGet:
      emit(ROp::kGlobalGet, reg(h_), 0, 0, in.idx());
      push();
      break;
    case Op::kGlobalSet:
      emit(ROp::kGlobalSet, top(), 0, 0, in.idx());
      pop();
      break;
    case Op::kMemorySize:
      emit(ROp::kMemorySize, reg(h_));
      push();
      break;
    case Op::kMemoryGrow:
      emit(ROp::kMemoryGrow, top());
      break;
    case Op::kMemoryCopy: {
      u32 n = top(), s = reg(h_ - 2), dst = reg(h_ - 3);
      pop(3);
      emit(ROp::kMemoryCopy, dst, s, n);
      break;
    }
    case Op::kMemoryFill: {
      u32 n = top(), v = reg(h_ - 2), dst = reg(h_ - 3);
      pop(3);
      emit(ROp::kMemoryFill, dst, v, n);
      break;
    }
    case Op::kI32Const:
      emit(ROp::kConst, reg(h_), 0, 0, u64(u32(i32(in.imm_i))));
      push();
      pending_const_ = out_.code.size() - 1;
      break;
    case Op::kI64Const:
      emit(ROp::kConst, reg(h_), 0, 0, u64(in.imm_i));
      push();
      pending_const_ = out_.code.size() - 1;
      break;
    case Op::kF32Const:
      emit(ROp::kConst, reg(h_), 0, 0, u64(std::bit_cast<u32>(in.imm_f32)));
      push();
      pending_const_ = out_.code.size() - 1;
      break;
    case Op::kF64Const:
      emit(ROp::kConst, reg(h_), 0, 0, std::bit_cast<u64>(in.imm_f64));
      push();
      pending_const_ = out_.code.size() - 1;
      break;
    case Op::kV128Const: {
      u32 pool = u32(out_.v128_pool.size());
      out_.v128_pool.push_back(in.imm_v128);
      emit(ROp::kConstV128, reg(h_), 0, 0, pool);
      push();
      break;
    }
    default: {
      if (ROp r = load_rop(in.op); r != ROp::kCount) {
        emit(r, top(), top(), 0, in.mem_offset);
        break;
      }
      if (ROp r = store_rop(in.op); r != ROp::kCount) {
        u32 val = top(), addr = reg(h_ - 2);
        pop(2);
        emit(r, addr, val, 0, in.mem_offset);
        break;
      }
      if (ROp r = lane_rop(in.op); r != ROp::kCount) {
        emit(r, top(), top(), 0, u64(in.imm_i));
        break;
      }
      if (ROp r = replace_lane_rop(in.op); r != ROp::kCount) {
        u32 rhs = top(), lhs = reg(h_ - 2);
        pop();
        emit(r, lhs, lhs, rhs, u64(in.imm_i));
        break;
      }
      if (in.op == Op::kI8x16Shuffle) {
        // The 16 selector bytes live in the function's v128 pool.
        u32 rhs = top(), lhs = reg(h_ - 2);
        pop();
        u32 pool = u32(out_.v128_pool.size());
        out_.v128_pool.push_back(in.imm_v128);
        emit(ROp::kI8x16Shuffle, lhs, lhs, rhs, pool);
        break;
      }
      if (in.op == Op::kV128Bitselect) {
        u32 mask = top(), v2 = reg(h_ - 2), v1 = reg(h_ - 3);
        pop(2);
        emit(ROp::kV128Bitselect, v1, v2, mask);
        break;
      }
      if (wasm::op_is_atomic(in.op)) {
        // Atomics reuse the address slot as the destination (a == b for
        // rmw/cmpxchg/wait/notify); handlers read every input before
        // writing r[a].
        if (in.op == Op::kAtomicFence) {
          emit(ROp::kAtomicFence);
          break;
        }
        if (in.op == Op::kMemoryAtomicNotify) {
          u32 cnt = top(), addr = reg(h_ - 2);
          pop();
          emit(ROp::kAtomicNotify, addr, addr, cnt, in.mem_offset);
          break;
        }
        if (in.op == Op::kMemoryAtomicWait32 ||
            in.op == Op::kMemoryAtomicWait64) {
          u32 tmo = top(), expd = reg(h_ - 2), addr = reg(h_ - 3);
          pop(2);
          emit(in.op == Op::kMemoryAtomicWait32 ? ROp::kAtomicWait32
                                                : ROp::kAtomicWait64,
               addr, addr, expd, in.mem_offset, tmo);
          break;
        }
        ROp r = atomic_rop(in.op);
        MW_CHECK(r != ROp::kCount, std::string("unlowered atomic: ") +
                                       wasm::op_name(in.op));
        if (atomic_is_load(in.op)) {
          emit(r, top(), top(), 0, in.mem_offset);
        } else if (atomic_is_store(in.op)) {
          u32 val = top(), addr = reg(h_ - 2);
          pop(2);
          emit(r, addr, val, 0, in.mem_offset);
        } else if (atomic_is_cmpxchg(in.op)) {
          u32 repl = top(), expd = reg(h_ - 2), addr = reg(h_ - 3);
          pop(2);
          emit(r, addr, addr, expd, in.mem_offset, repl);
        } else {
          u32 operand = top(), addr = reg(h_ - 2);
          pop();
          emit(r, addr, addr, operand, in.mem_offset);
        }
        break;
      }
      ROp r = simple_rop(in.op);
      MW_CHECK(r != ROp::kCount, std::string("unlowered opcode: ") +
                                     wasm::op_name(in.op));
      if (is_unop(in.op)) {
        emit(r, top(), top());
      } else {
        u32 rhs = top(), lhs = reg(h_ - 2);
        pop();
        // const t ; binop  -->  binop_imm, when the constant was emitted by
        // the immediately preceding step and feeds only this operand.
        if (pending_const == out_.code.size() - 1 &&
            out_.code.back().op == ROp::kConst && out_.code.back().a == rhs) {
          if (ROp fop = lowering_imm_fused(in.op); fop != ROp::kCount) {
            u64 imm = out_.code.back().imm;
            out_.code.back() = RInstr{fop, lhs, lhs, 0, 0, imm};
            break;
          }
        }
        emit(r, lhs, lhs, rhs);
      }
      break;
    }
  }
}

}  // namespace

RFunc lower_function(const wasm::Module& m, u32 defined_index) {
  FuncLowering lowering(m, defined_index);
  return lowering.run();
}

RModule lower_module(const wasm::Module& m) {
  RModule rm;
  rm.funcs.reserve(m.bodies.size());
  for (u32 i = 0; i < m.bodies.size(); ++i)
    rm.funcs.push_back(lower_function(m, i));
  return rm;
}

}  // namespace mpiwasm::rt
