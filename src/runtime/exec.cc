#include "runtime/exec.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "runtime/arith.h"
#include "runtime/engine.h"
#include "runtime/instance.h"

namespace mpiwasm::rt {

using namespace arith;

void exec_regcode(Instance& inst, const RFunc& f, Slot* r) {
  LinearMemory& mem = inst.memory();
  const RInstr* code = f.code.data();
  const size_t n = f.code.size();
  size_t pc = 0;

// Operand access helpers.
#define A r[in.a]
#define B r[in.b]
#define C r[in.c]
#define D r[in.d]
#define LOADM(dst_field, T, addr_field)                          \
  A.dst_field = mem.load<T>(u64(B.addr_field) + in.imm)
#define STOREM(T, val_field)                                     \
  mem.store<T>(u64(A.u32v) + in.imm, T(B.val_field))
#define BIN(field, expr)                \
  {                                     \
    auto x = B.field;                   \
    auto y = C.field;                   \
    A.field = (expr);                   \
  }                                     \
  break
#define CMP(field, expr)                \
  {                                     \
    auto x = B.field;                   \
    auto y = C.field;                   \
    A.u32v = (expr) ? 1u : 0u;          \
  }                                     \
  break
#define UN(dfield, sfield, expr)        \
  {                                     \
    auto x = B.sfield;                  \
    (void)x;                            \
    A.dfield = (expr);                  \
  }                                     \
  break
#define VBIN(T, N, expr)                                              \
  A.v128v = v128_binop<T, N>(B.v128v, C.v128v,                        \
                             [](T x, T y) { (void)x; (void)y; return (expr); }); \
  break
#define BRCMP(field, expr)              \
  {                                     \
    auto x = A.field;                   \
    auto y = B.field;                   \
    if (expr) {                         \
      pc = size_t(in.imm);              \
      continue;                         \
    }                                   \
  }                                     \
  break

  while (pc < n) {
    const RInstr& in = code[pc];
    switch (in.op) {
      case ROp::kNop: break;
      case ROp::kMov: A = B; break;
      case ROp::kConst: A.u64v = in.imm; break;
      case ROp::kConstV128: A.v128v = f.v128_pool[in.imm]; break;
      case ROp::kSelect:
        if (C.i32v == 0) A = B;
        break;
      case ROp::kGlobalGet: A = inst.globals()[in.imm]; break;
      case ROp::kGlobalSet: inst.globals()[in.imm] = A; break;

      case ROp::kBr: pc = size_t(in.imm); continue;
      case ROp::kBrIf:
        if (A.i32v != 0) { pc = size_t(in.imm); continue; }
        break;
      case ROp::kBrIfNot:
        if (A.i32v == 0) { pc = size_t(in.imm); continue; }
        break;
      case ROp::kBrTable: {
        const auto& pool = f.br_pool[in.imm];
        u32 idx = A.u32v;
        u32 k = idx < pool.size() - 1 ? idx : u32(pool.size() - 1);
        pc = pool[k];
        continue;
      }
      case ROp::kReturn:
        r[0] = A;
        return;
      case ROp::kReturnVoid:
        return;
      case ROp::kCall:
        inst.call_function(u32(in.imm), &r[in.a]);
        break;
      case ROp::kCallIndirect: {
        u32 idx = r[in.a + in.b].u32v;
        const auto& tbl = inst.table();
        if (idx >= tbl.size() || tbl[idx] == UINT32_MAX)
          throw Trap(TrapKind::kUndefinedTableElement,
                     "table index " + std::to_string(idx));
        u32 fidx = tbl[idx];
        const CompiledModule& cm = inst.compiled();
        if (cm.func_canon[fidx] != cm.canon_type_ids[in.imm])
          throw Trap(TrapKind::kIndirectCallTypeMismatch,
                     "signature mismatch at table index " + std::to_string(idx));
        inst.call_function(fidx, &r[in.a]);
        break;
      }
      case ROp::kUnreachable:
        throw Trap(TrapKind::kUnreachable, "unreachable executed");

      case ROp::kMemorySize: A.u32v = mem.pages(); break;
      case ROp::kMemoryGrow: A.i32v = mem.grow(A.u32v); break;
      case ROp::kMemoryCopy: {
        u64 d = A.u32v, s = B.u32v, cnt = C.u32v;
        mem.check(d, cnt);
        mem.check(s, cnt);
        std::memmove(mem.base() + d, mem.base() + s, size_t(cnt));
        break;
      }
      case ROp::kMemoryFill: {
        u64 d = A.u32v, cnt = C.u32v;
        mem.check(d, cnt);
        std::memset(mem.base() + d, int(B.u32v & 0xFF), size_t(cnt));
        break;
      }

      case ROp::kI32Load: LOADM(u32v, u32, u32v); break;
      case ROp::kI64Load: LOADM(u64v, u64, u32v); break;
      case ROp::kF32Load: LOADM(f32v, f32, u32v); break;
      case ROp::kF64Load: LOADM(f64v, f64, u32v); break;
      case ROp::kI32Load8S: A.i32v = i32(mem.load<i8>(u64(B.u32v) + in.imm)); break;
      case ROp::kI32Load8U: A.u32v = u32(mem.load<u8>(u64(B.u32v) + in.imm)); break;
      case ROp::kI32Load16S: A.i32v = i32(mem.load<i16>(u64(B.u32v) + in.imm)); break;
      case ROp::kI32Load16U: A.u32v = u32(mem.load<u16>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load8S: A.i64v = i64(mem.load<i8>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load8U: A.u64v = u64(mem.load<u8>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load16S: A.i64v = i64(mem.load<i16>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load16U: A.u64v = u64(mem.load<u16>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load32S: A.i64v = i64(mem.load<i32>(u64(B.u32v) + in.imm)); break;
      case ROp::kI64Load32U: A.u64v = u64(mem.load<u32>(u64(B.u32v) + in.imm)); break;
      case ROp::kV128Load: A.v128v = mem.load<V128>(u64(B.u32v) + in.imm); break;

      case ROp::kI32Store: STOREM(u32, u32v); break;
      case ROp::kI64Store: STOREM(u64, u64v); break;
      case ROp::kF32Store: STOREM(f32, f32v); break;
      case ROp::kF64Store: STOREM(f64, f64v); break;
      case ROp::kI32Store8: STOREM(u8, u32v); break;
      case ROp::kI32Store16: STOREM(u16, u32v); break;
      case ROp::kI64Store8: STOREM(u8, u64v); break;
      case ROp::kI64Store16: STOREM(u16, u64v); break;
      case ROp::kI64Store32: STOREM(u32, u64v); break;
      case ROp::kV128Store: mem.store<V128>(u64(A.u32v) + in.imm, B.v128v); break;

      case ROp::kI32Eqz: UN(u32v, i32v, x == 0 ? 1u : 0u);
      case ROp::kI32Eq: CMP(i32v, x == y);
      case ROp::kI32Ne: CMP(i32v, x != y);
      case ROp::kI32LtS: CMP(i32v, x < y);
      case ROp::kI32LtU: CMP(u32v, x < y);
      case ROp::kI32GtS: CMP(i32v, x > y);
      case ROp::kI32GtU: CMP(u32v, x > y);
      case ROp::kI32LeS: CMP(i32v, x <= y);
      case ROp::kI32LeU: CMP(u32v, x <= y);
      case ROp::kI32GeS: CMP(i32v, x >= y);
      case ROp::kI32GeU: CMP(u32v, x >= y);
      case ROp::kI64Eqz: UN(u32v, i64v, x == 0 ? 1u : 0u);
      case ROp::kI64Eq: CMP(i64v, x == y);
      case ROp::kI64Ne: CMP(i64v, x != y);
      case ROp::kI64LtS: CMP(i64v, x < y);
      case ROp::kI64LtU: CMP(u64v, x < y);
      case ROp::kI64GtS: CMP(i64v, x > y);
      case ROp::kI64GtU: CMP(u64v, x > y);
      case ROp::kI64LeS: CMP(i64v, x <= y);
      case ROp::kI64LeU: CMP(u64v, x <= y);
      case ROp::kI64GeS: CMP(i64v, x >= y);
      case ROp::kI64GeU: CMP(u64v, x >= y);
      case ROp::kF32Eq: CMP(f32v, x == y);
      case ROp::kF32Ne: CMP(f32v, x != y);
      case ROp::kF32Lt: CMP(f32v, x < y);
      case ROp::kF32Gt: CMP(f32v, x > y);
      case ROp::kF32Le: CMP(f32v, x <= y);
      case ROp::kF32Ge: CMP(f32v, x >= y);
      case ROp::kF64Eq: CMP(f64v, x == y);
      case ROp::kF64Ne: CMP(f64v, x != y);
      case ROp::kF64Lt: CMP(f64v, x < y);
      case ROp::kF64Gt: CMP(f64v, x > y);
      case ROp::kF64Le: CMP(f64v, x <= y);
      case ROp::kF64Ge: CMP(f64v, x >= y);

      case ROp::kI32Clz: UN(u32v, u32v, u32(std::countl_zero(x)));
      case ROp::kI32Ctz: UN(u32v, u32v, u32(std::countr_zero(x)));
      case ROp::kI32Popcnt: UN(u32v, u32v, u32(std::popcount(x)));
      case ROp::kI32Add: BIN(u32v, x + y);
      case ROp::kI32Sub: BIN(u32v, x - y);
      case ROp::kI32Mul: BIN(u32v, x * y);
      case ROp::kI32DivS: BIN(i32v, i32_div_s(x, y));
      case ROp::kI32DivU: BIN(u32v, i32_div_u(x, y));
      case ROp::kI32RemS: BIN(i32v, i32_rem_s(x, y));
      case ROp::kI32RemU: BIN(u32v, i32_rem_u(x, y));
      case ROp::kI32And: BIN(u32v, x & y);
      case ROp::kI32Or: BIN(u32v, x | y);
      case ROp::kI32Xor: BIN(u32v, x ^ y);
      case ROp::kI32Shl: BIN(u32v, i32_shl(x, y));
      case ROp::kI32ShrS: BIN(i32v, i32_shr_s(x, u32(y)));
      case ROp::kI32ShrU: BIN(u32v, i32_shr_u(x, y));
      case ROp::kI32Rotl: BIN(u32v, i32_rotl(x, y));
      case ROp::kI32Rotr: BIN(u32v, i32_rotr(x, y));
      case ROp::kI64Clz: UN(u64v, u64v, u64(std::countl_zero(x)));
      case ROp::kI64Ctz: UN(u64v, u64v, u64(std::countr_zero(x)));
      case ROp::kI64Popcnt: UN(u64v, u64v, u64(std::popcount(x)));
      case ROp::kI64Add: BIN(u64v, x + y);
      case ROp::kI64Sub: BIN(u64v, x - y);
      case ROp::kI64Mul: BIN(u64v, x * y);
      case ROp::kI64DivS: BIN(i64v, i64_div_s(x, y));
      case ROp::kI64DivU: BIN(u64v, i64_div_u(x, y));
      case ROp::kI64RemS: BIN(i64v, i64_rem_s(x, y));
      case ROp::kI64RemU: BIN(u64v, i64_rem_u(x, y));
      case ROp::kI64And: BIN(u64v, x & y);
      case ROp::kI64Or: BIN(u64v, x | y);
      case ROp::kI64Xor: BIN(u64v, x ^ y);
      case ROp::kI64Shl: BIN(u64v, i64_shl(x, y));
      case ROp::kI64ShrS: BIN(i64v, i64_shr_s(x, u64(y)));
      case ROp::kI64ShrU: BIN(u64v, i64_shr_u(x, y));
      case ROp::kI64Rotl: BIN(u64v, i64_rotl(x, y));
      case ROp::kI64Rotr: BIN(u64v, i64_rotr(x, y));

      case ROp::kF32Abs: UN(f32v, f32v, std::fabs(x));
      case ROp::kF32Neg: UN(f32v, f32v, -x);
      case ROp::kF32Ceil: UN(f32v, f32v, std::ceil(x));
      case ROp::kF32Floor: UN(f32v, f32v, std::floor(x));
      case ROp::kF32Trunc: UN(f32v, f32v, std::trunc(x));
      case ROp::kF32Nearest: UN(f32v, f32v, fnearest(x));
      case ROp::kF32Sqrt: UN(f32v, f32v, std::sqrt(x));
      case ROp::kF32Add: BIN(f32v, x + y);
      case ROp::kF32Sub: BIN(f32v, x - y);
      case ROp::kF32Mul: BIN(f32v, x * y);
      case ROp::kF32Div: BIN(f32v, x / y);
      case ROp::kF32Min: BIN(f32v, fmin_wasm(x, y));
      case ROp::kF32Max: BIN(f32v, fmax_wasm(x, y));
      case ROp::kF32Copysign: BIN(f32v, std::copysign(x, y));
      case ROp::kF64Abs: UN(f64v, f64v, std::fabs(x));
      case ROp::kF64Neg: UN(f64v, f64v, -x);
      case ROp::kF64Ceil: UN(f64v, f64v, std::ceil(x));
      case ROp::kF64Floor: UN(f64v, f64v, std::floor(x));
      case ROp::kF64Trunc: UN(f64v, f64v, std::trunc(x));
      case ROp::kF64Nearest: UN(f64v, f64v, fnearest(x));
      case ROp::kF64Sqrt: UN(f64v, f64v, std::sqrt(x));
      case ROp::kF64Add: BIN(f64v, x + y);
      case ROp::kF64Sub: BIN(f64v, x - y);
      case ROp::kF64Mul: BIN(f64v, x * y);
      case ROp::kF64Div: BIN(f64v, x / y);
      case ROp::kF64Min: BIN(f64v, fmin_wasm(x, y));
      case ROp::kF64Max: BIN(f64v, fmax_wasm(x, y));
      case ROp::kF64Copysign: BIN(f64v, std::copysign(x, y));

      case ROp::kI32WrapI64: UN(u32v, u64v, u32(x));
      case ROp::kI32TruncF32S: UN(i32v, f32v, (trunc_checked<i32>(x, "i32.trunc_f32_s")));
      case ROp::kI32TruncF32U: UN(u32v, f32v, (trunc_checked<u32>(x, "i32.trunc_f32_u")));
      case ROp::kI32TruncF64S: UN(i32v, f64v, (trunc_checked<i32>(x, "i32.trunc_f64_s")));
      case ROp::kI32TruncF64U: UN(u32v, f64v, (trunc_checked<u32>(x, "i32.trunc_f64_u")));
      case ROp::kI64ExtendI32S: UN(i64v, i32v, i64(x));
      case ROp::kI64ExtendI32U: UN(u64v, u32v, u64(x));
      case ROp::kI64TruncF32S: UN(i64v, f32v, (trunc_checked<i64>(x, "i64.trunc_f32_s")));
      case ROp::kI64TruncF32U: UN(u64v, f32v, (trunc_checked<u64>(x, "i64.trunc_f32_u")));
      case ROp::kI64TruncF64S: UN(i64v, f64v, (trunc_checked<i64>(x, "i64.trunc_f64_s")));
      case ROp::kI64TruncF64U: UN(u64v, f64v, (trunc_checked<u64>(x, "i64.trunc_f64_u")));
      case ROp::kF32ConvertI32S: UN(f32v, i32v, f32(x));
      case ROp::kF32ConvertI32U: UN(f32v, u32v, f32(x));
      case ROp::kF32ConvertI64S: UN(f32v, i64v, f32(x));
      case ROp::kF32ConvertI64U: UN(f32v, u64v, f32(x));
      case ROp::kF32DemoteF64: UN(f32v, f64v, f32(x));
      case ROp::kF64ConvertI32S: UN(f64v, i32v, f64(x));
      case ROp::kF64ConvertI32U: UN(f64v, u32v, f64(x));
      case ROp::kF64ConvertI64S: UN(f64v, i64v, f64(x));
      case ROp::kF64ConvertI64U: UN(f64v, u64v, f64(x));
      case ROp::kF64PromoteF32: UN(f64v, f32v, f64(x));
      case ROp::kI32ReinterpretF32:
      case ROp::kI64ReinterpretF64:
      case ROp::kF32ReinterpretI32:
      case ROp::kF64ReinterpretI64:
        A = B;  // same bit pattern, different typed view
        break;
      case ROp::kI32Extend8S: UN(i32v, i32v, i32(i8(x)));
      case ROp::kI32Extend16S: UN(i32v, i32v, i32(i16(x)));
      case ROp::kI64Extend8S: UN(i64v, i64v, i64(i8(x)));
      case ROp::kI64Extend16S: UN(i64v, i64v, i64(i16(x)));
      case ROp::kI64Extend32S: UN(i64v, i64v, i64(i32(x)));

      case ROp::kI8x16Splat: A.v128v = V128::splat<u8>(u8(B.u32v)); break;
      case ROp::kI32x4Splat: A.v128v = V128::splat<u32>(B.u32v); break;
      case ROp::kI64x2Splat: A.v128v = V128::splat<u64>(B.u64v); break;
      case ROp::kF32x4Splat: A.v128v = V128::splat<f32>(B.f32v); break;
      case ROp::kF64x2Splat: A.v128v = V128::splat<f64>(B.f64v); break;
      case ROp::kI32x4ExtractLane:
        A.u32v = B.v128v.lane<u32, 4>(int(in.imm));
        break;
      case ROp::kI64x2ExtractLane:
        A.u64v = B.v128v.lane<u64, 2>(int(in.imm));
        break;
      case ROp::kF32x4ExtractLane:
        A.f32v = B.v128v.lane<f32, 4>(int(in.imm));
        break;
      case ROp::kF64x2ExtractLane:
        A.f64v = B.v128v.lane<f64, 2>(int(in.imm));
        break;
      case ROp::kI8x16Eq: A.v128v = i8x16_eq(B.v128v, C.v128v); break;
      case ROp::kV128Not: A.v128v = v128_not(B.v128v); break;
      case ROp::kV128And: A.v128v = v128_bitop_and(B.v128v, C.v128v); break;
      case ROp::kV128Or: A.v128v = v128_bitop_or(B.v128v, C.v128v); break;
      case ROp::kV128Xor: A.v128v = v128_bitop_xor(B.v128v, C.v128v); break;
      case ROp::kV128AnyTrue: A.u32v = u32(v128_any_true(B.v128v)); break;
      case ROp::kI32x4Add: VBIN(u32, 4, x + y);
      case ROp::kI32x4Sub: VBIN(u32, 4, x - y);
      case ROp::kI32x4Mul: VBIN(u32, 4, x * y);
      case ROp::kI64x2Add: VBIN(u64, 2, x + y);
      case ROp::kI64x2Sub: VBIN(u64, 2, x - y);
      case ROp::kF32x4Add: VBIN(f32, 4, x + y);
      case ROp::kF32x4Sub: VBIN(f32, 4, x - y);
      case ROp::kF32x4Mul: VBIN(f32, 4, x * y);
      case ROp::kF32x4Div: VBIN(f32, 4, x / y);
      case ROp::kF64x2Add: VBIN(f64, 2, x + y);
      case ROp::kF64x2Sub: VBIN(f64, 2, x - y);
      case ROp::kF64x2Mul: VBIN(f64, 2, x * y);
      case ROp::kF64x2Div: VBIN(f64, 2, x / y);

      case ROp::kI32AddImm: A.u32v = B.u32v + u32(in.imm); break;
      case ROp::kI64AddImm: A.u64v = B.u64v + in.imm; break;
      case ROp::kI32ShlImm: A.u32v = i32_shl(B.u32v, u32(in.imm)); break;
      case ROp::kI32ShrUImm: A.u32v = i32_shr_u(B.u32v, u32(in.imm)); break;
      case ROp::kI32AndImm: A.u32v = B.u32v & u32(in.imm); break;
      case ROp::kI32MulImm: A.u32v = B.u32v * u32(in.imm); break;
      case ROp::kBrIfI32Eq: BRCMP(i32v, x == y);
      case ROp::kBrIfI32Ne: BRCMP(i32v, x != y);
      case ROp::kBrIfI32LtS: BRCMP(i32v, x < y);
      case ROp::kBrIfI32LtU: BRCMP(u32v, x < y);
      case ROp::kBrIfI32GtS: BRCMP(i32v, x > y);
      case ROp::kBrIfI32GtU: BRCMP(u32v, x > y);
      case ROp::kBrIfI32LeS: BRCMP(i32v, x <= y);
      case ROp::kBrIfI32LeU: BRCMP(u32v, x <= y);
      case ROp::kBrIfI32GeS: BRCMP(i32v, x >= y);
      case ROp::kBrIfI32GeU: BRCMP(u32v, x >= y);
      case ROp::kF64MulAdd: A.f64v = B.f64v * C.f64v + D.f64v; break;

      case ROp::kCount:
        fatal("invalid ROp in executor");
    }
    ++pc;
  }
  // Fell off the end: only possible for a void function whose last
  // instruction was not a Return (lowering always emits one, so this is an
  // internal error).
  fatal("regcode executor fell off function end");
}

#undef A
#undef B
#undef C
#undef D
#undef LOADM
#undef STOREM
#undef BIN
#undef CMP
#undef UN
#undef VBIN
#undef BRCMP

}  // namespace mpiwasm::rt
