#include "runtime/exec.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <mutex>

#include "runtime/arith.h"
#include "runtime/engine.h"
#include "runtime/instance.h"

namespace mpiwasm::rt {

using namespace arith;

namespace {

std::atomic<bool> g_force_switch{false};

// Operand access helpers shared by every HANDLER body (exec_ops.inc).
#define A r[in.a]
#define B r[in.b]
#define C r[in.c]
#define D r[in.d]
// Indexed effective address: u32-wrapped base + (index << shift), then the
// 64-bit static offset — identical wrap behavior to the unfused
// shl/add/load sequence it replaces.
#define IXADDR(basefield) \
  (u64(u32(basefield.u32v + (C.u32v << in.d))) + in.imm)
#define LOADM(dst_field, T) A.dst_field = mem.load<T>(u64(B.u32v) + in.imm)
#define STOREM(T, val_field) \
  mem.store<T>(u64(A.u32v) + in.imm, T(B.val_field))
#define BIN(field, expr)   \
  {                        \
    auto x = B.field;      \
    auto y = C.field;      \
    A.field = (expr);      \
  }
#define CMP(field, expr)   \
  {                        \
    auto x = B.field;      \
    auto y = C.field;      \
    A.u32v = (expr) ? 1u : 0u; \
  }
#define UN(dfield, sfield, expr) \
  {                              \
    auto x = B.sfield;           \
    (void)x;                     \
    A.dfield = (expr);           \
  }
#define VBIN(T, N, expr)                                              \
  A.v128v = v128_binop<T, N>(B.v128v, C.v128v,                        \
                             [](T x, T y) { (void)x; (void)y; return (expr); })
#define VUN(T, N, expr)                                               \
  A.v128v = v128_unop<T, N>(B.v128v, [](T x) { (void)x; return (expr); })
#define VCMP(T, N, expr)                                              \
  A.v128v = v128_cmp<T, N>(B.v128v, C.v128v,                          \
                           [](T x, T y) { (void)x; (void)y; return (expr); })
// Replace-lane: copy the vector in r[b], overwrite lane imm from r[c].
#define VREPLACE(T, N, srcfield)                \
  {                                             \
    V128 t = B.v128v;                           \
    t.set_lane<T, N>(int(in.imm), T(C.srcfield)); \
    A.v128v = t;                                \
  }
#define BRCMP(field, expr) \
  {                        \
    auto x = A.field;      \
    auto y = B.field;      \
    if (expr) JUMP(in.imm); \
  }
#define SELCMP(field, expr) \
  {                         \
    auto x = C.field;       \
    auto y = D.field;       \
    if (!(expr)) A = B;     \
  }

// ---------------------------------------------------------------------------
// Portable switch executor (always compiled; the only executor when
// MPIWASM_SWITCH_DISPATCH is defined).
// ---------------------------------------------------------------------------

void exec_switch(Instance& inst, const RFunc& f, Slot* r) {
  LinearMemory& mem = inst.memory();
  const RInstr* code = f.code.data();
  const size_t n = f.code.size();
  size_t pc = 0;

  while (pc < n) {
    const RInstr& in = code[pc];
    switch (in.op) {
#define HANDLER(name, ...) \
  case ROp::k##name: {     \
    __VA_ARGS__            \
  } break;
#define JUMP(t)        \
  {                    \
    pc = size_t(t);    \
    continue;          \
  }
#include "runtime/exec_ops.inc"
#undef HANDLER
#undef JUMP
      case ROp::kCount:
        fatal("invalid ROp in executor");
    }
    ++pc;
  }
  // Fell off the end: only possible for a void function whose last
  // instruction was not a Return (lowering always emits one, so this is an
  // internal error).
  fatal("regcode executor fell off function end");
}

// ---------------------------------------------------------------------------
// Direct-threaded executor (computed goto). The same translation unit is
// entered once with r == nullptr to capture the handler labels into
// g_handler_table; after that, prepared RFuncs carry one resolved handler
// address per instruction and dispatch is a single indirect goto.
// ---------------------------------------------------------------------------

#if MPIWASM_DISPATCH_THREADED

const void* g_handler_table[size_t(ROp::kCount)];

void exec_threaded(Instance* instp, const RFunc* fp, Slot* r) {
  if (r == nullptr) {  // handler-address capture call (once per process)
#define HANDLER(name, ...) \
  g_handler_table[size_t(ROp::k##name)] = &&threaded_##name;
#define JUMP(t)
#include "runtime/exec_ops.inc"
#undef HANDLER
#undef JUMP
    return;
  }

  Instance& inst = *instp;
  const RFunc& f = *fp;
  LinearMemory& mem = inst.memory();
  const RInstr* code = f.code.data();
  const void* const* handlers = f.handlers.data();
  size_t pc = 0;

#define DISPATCH() goto* handlers[pc]
#define JUMP(t)       \
  {                   \
    pc = size_t(t);   \
    DISPATCH();       \
  }
#define HANDLER(name, ...)            \
  threaded_##name : {                 \
    const RInstr& in = code[pc];      \
    (void)in;                         \
    {                                 \
      __VA_ARGS__                     \
    }                                 \
  }                                   \
  ++pc;                               \
  DISPATCH();

  DISPATCH();
#include "runtime/exec_ops.inc"
#undef HANDLER
#undef JUMP
#undef DISPATCH
  fatal("threaded executor fell through");  // unreachable
}

const void* const* handler_table() {
  static std::once_flag once;
  std::call_once(once, [] { exec_threaded(nullptr, nullptr, nullptr); });
  return g_handler_table;
}

/// The goto loop has no pc bound check, so only accept code where control
/// can never leave [0, n): a terminator at the end and every branch target
/// in range. The optimizer and lowering always satisfy this; hand-built
/// test bodies that do not simply keep using the switch loop.
bool threadable(const RFunc& f) {
  const size_t n = f.code.size();
  if (n == 0) return false;
  ROp last = f.code[n - 1].op;
  if (last != ROp::kBr && last != ROp::kReturn && last != ROp::kReturnVoid &&
      last != ROp::kUnreachable && last != ROp::kBrTable)
    return false;
  if (last == ROp::kBrTable && f.br_pool.empty()) return false;
  for (const RInstr& in : f.code) {
    switch (in.op) {
      case ROp::kBr: case ROp::kBrIf: case ROp::kBrIfNot:
      case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
      case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
      case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
      case ROp::kBrIfI32GeU:
        if (in.imm >= n) return false;
        break;
      case ROp::kBrTable:
        if (in.imm >= f.br_pool.size()) return false;
        for (u32 t : f.br_pool[in.imm])
          if (t >= n) return false;
        break;
      default:
        break;
    }
  }
  return true;
}

#endif  // MPIWASM_DISPATCH_THREADED

}  // namespace

void prepare_rfunc(RFunc& f) {
#if MPIWASM_DISPATCH_THREADED
  if (!threadable(f)) {
    f.handlers.clear();
    return;
  }
  const void* const* table = handler_table();
  f.handlers.resize(f.code.size());
  for (size_t i = 0; i < f.code.size(); ++i)
    f.handlers[i] = table[size_t(f.code[i].op)];
#else
  f.handlers.clear();
#endif
}

bool threaded_dispatch_compiled() { return MPIWASM_DISPATCH_THREADED != 0; }

void set_dispatch_force_switch(bool on) {
  g_force_switch.store(on, std::memory_order_relaxed);
}

void exec_regcode(Instance& inst, const RFunc& f, Slot* r) {
#if MPIWASM_DISPATCH_THREADED
  if (!f.handlers.empty() &&
      !g_force_switch.load(std::memory_order_relaxed)) {
    exec_threaded(&inst, &f, r);
    return;
  }
#endif
  exec_switch(inst, f, r);
}

#undef A
#undef B
#undef C
#undef D
#undef IXADDR
#undef LOADM
#undef STOREM
#undef BIN
#undef CMP
#undef UN
#undef VBIN
#undef VUN
#undef VCMP
#undef VREPLACE
#undef BRCMP
#undef SELCMP

}  // namespace mpiwasm::rt
