// Template (copy-and-patch style) x86-64 code generator for RegCode.
//
// Each ROp maps onto a fixed instruction template with patched register
// numbers, Slot-frame displacements, and immediates — the copy-and-patch
// idea applied at RegCode granularity, which works because RegCode is
// already register-based with explicit bounds checks (kMemGuard + raw twins)
// and fused superinstructions.
//
// Fixed register assignment (System V callee-saved, so helper calls never
// spill them):
//   rbx  Slot*  register frame        r13  u8*  linear-memory base
//   r12  Slot*  globals               r15  u64  linear-memory byte size
//   r14  Instance*
// rax always holds the effective address at a bounds check, so every
// out-of-line trap stub can pass it to the OOB helper unchanged. After any
// kCall/kCallIndirect/kMemoryGrow the templates reload r13/r15 from the
// helper's {base,size} return pair — exactly the points where memory can
// move or grow.
//
// Functions containing any ROp without a template are not compiled at all
// (per-function fallback to the threaded interpreter); there is no slow
// path inside JIT code except the helper calls.
#pragma once

#include <memory>

#include "runtime/regcode.h"

namespace mpiwasm::rt {

/// True when `op` has an x86-64 template under `cpu_features` (see
/// jit_cpu_features()). Ops without templates force the whole containing
/// function back to the threaded interpreter.
bool jit_op_covered(ROp op, u32 cpu_features);

/// Compiles `f` to a position-independent native blob (features and layout
/// hash stamped for cache validation). Returns null when any instruction
/// lacks a template or the body fails the structural checks the emitter
/// relies on (same ones as threaded dispatch: terminator at the end, branch
/// targets in range).
std::shared_ptr<const JitBlob> jit_compile_function(const RFunc& f);

}  // namespace mpiwasm::rt
