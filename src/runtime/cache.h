// FileSystemCache for compiled RegCode.
//
// Reproduces MPIWasm's compilation cache (paper §3.3): the module bytes are
// hashed (BLAKE-3 there, SHA-256 here), and the compiled artifact is stored
// in the local filesystem under that hash. Any change to the module yields
// a new hash and triggers recompilation; repeated executions of the same
// application skip compilation entirely.
//
// The unit of serialization is a *function*: the static tiers store one
// entry holding every function's record, while the tiered engine stores
// and loads individual functions keyed by (module hash, function index,
// tier) as they get promoted — a hot function compiled on one run
// warm-starts on the next.
#pragma once

#include <optional>
#include <string>

#include "runtime/regcode.h"
#include "support/sha256.h"

namespace mpiwasm::rt {

class FileSystemCache {
 public:
  /// `dir` empty selects "<system temp>/mpiwasm-cache".
  explicit FileSystemCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Loads a compiled module for (hash, tier_tag); nullopt on miss or on a
  /// corrupt/incompatible entry (which is removed).
  std::optional<RModule> load(const Sha256Digest& hash,
                              const std::string& tier_tag) const;

  /// Stores `rm`; best-effort (failures are logged, not fatal).
  void store(const Sha256Digest& hash, const std::string& tier_tag,
             const RModule& rm) const;

  /// Loads one function's compiled body for (hash, func_index, tier_tag);
  /// nullopt on miss or on a corrupt entry (which is removed).
  std::optional<RFunc> load_func(const Sha256Digest& hash, u32 func_index,
                                 const std::string& tier_tag) const;

  /// Stores one function's compiled body; best-effort.
  void store_func(const Sha256Digest& hash, u32 func_index,
                  const std::string& tier_tag, const RFunc& f) const;

  /// Removes every cache entry (used by tests and the cache ablation).
  void clear() const;

 private:
  std::string entry_path(const Sha256Digest& hash,
                         const std::string& tier_tag) const;
  std::string func_entry_path(const Sha256Digest& hash, u32 func_index,
                              const std::string& tier_tag) const;
  std::string dir_;
};

/// Where the collective-autotuning table lives: next to the code cache, so
/// both kinds of learned state share one directory. `dir` empty selects the
/// same "<system temp>/mpiwasm-cache" default as FileSystemCache.
std::string autotune_table_path(const std::string& dir);

/// Serialization used by the cache (exposed for round-trip tests).
std::vector<u8> serialize_regcode(const RModule& rm);
std::optional<RModule> deserialize_regcode(std::span<const u8> bytes);
std::vector<u8> serialize_rfunc(const RFunc& f);
std::optional<RFunc> deserialize_rfunc(std::span<const u8> bytes);

}  // namespace mpiwasm::rt
