// RegCode: the register-transfer IR both compiled tiers execute.
//
// Wasm's operand stack is statically typed, so a stack slot at height h can
// be assigned the fixed virtual register (num_locals + h). The Baseline
// tier emits this mapping in a single linear pass (the Singlepass analogue
// of paper Table 1); the Optimizing tier then runs real passes over it
// (the Cranelift/LLVM analogue). See DESIGN.md §5.
//
// The executor attacks the three interpreter costs Jangda et al. identify
// as the Wasm-vs-native gap:
//   - dispatch: computed-goto direct threading (MPIWASM_SWITCH_DISPATCH
//     compile-time opt-out keeps the portable switch loop; see exec.h).
//     Handler addresses live in RFunc::handlers, resolved once per function
//     at publication time.
//   - bounds checks: the hoist pass versions counted loops behind a single
//     kMemGuard and runs the unchecked k*Raw ops on the fast path.
//   - missed fusion: superinstructions collapse load+op, op+store,
//     cmp+select, cmp+branch, indexed-address (base + (idx << s) + imm) and
//     f32/f64 multiply-add chains into one dispatch each.
// bench_dispatch measures each axis and writes BENCH_exec.json (see
// README "Execution-core benchmarks" for the schema).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/common.h"
#include "wasm/opcodes.h"
#include "wasm/types.h"

namespace mpiwasm::rt {

enum class ROp : u16 {
  kNop = 0,
  kMov,          // r[a] = r[b]
  kConst,        // r[a] = imm (raw 64-bit pattern)
  kConstV128,    // r[a] = v128_pool[imm]
  kSelect,       // r[a] = (r[c].i32 != 0) ? r[a] : r[b]
  kGlobalGet,    // r[a] = globals[imm]
  kGlobalSet,    // globals[imm] = r[a]
  // Control flow. Branch targets are absolute instruction indices in imm.
  kBr,
  kBrIf,         // taken if r[a].i32 != 0
  kBrIfNot,      // taken if r[a].i32 == 0
  kBrTable,      // index r[a]; imm = index into br_pool
  kReturn,       // result in r[a]
  kReturnVoid,
  kCall,         // imm = function index (combined space); args at r[a...]
                 // b = arg count; result (if any) lands in r[a]
  kCallIndirect, // imm = canonical sig id; args r[a..a+b), index r[a+b]
  kUnreachable,
  // Memory management.
  kMemorySize,   // r[a] = pages
  kMemoryGrow,   // r[a] = grow(r[a])
  kMemoryCopy,   // copy(dst=r[a], src=r[b], n=r[c])
  kMemoryFill,   // fill(dst=r[a], val=r[b], n=r[c])
  // Loads: r[a] = mem[r[b].u32 + imm]. The *Splat loads read the scalar
  // width and broadcast it to every lane.
  kI32Load, kI64Load, kF32Load, kF64Load,
  kI32Load8S, kI32Load8U, kI32Load16S, kI32Load16U,
  kI64Load8S, kI64Load8U, kI64Load16S, kI64Load16U, kI64Load32S, kI64Load32U,
  kV128Load, kV128Load32Splat, kV128Load64Splat,
  // Stores: mem[r[a].u32 + imm] = r[b].
  kI32Store, kI64Store, kF32Store, kF64Store,
  kI32Store8, kI32Store16, kI64Store8, kI64Store16, kI64Store32,
  kV128Store,
  // Numeric ops: unops r[a] = op(r[b]); binops r[a] = op(r[b], r[c]).
  kI32Eqz, kI32Eq, kI32Ne, kI32LtS, kI32LtU, kI32GtS, kI32GtU,
  kI32LeS, kI32LeU, kI32GeS, kI32GeU,
  kI64Eqz, kI64Eq, kI64Ne, kI64LtS, kI64LtU, kI64GtS, kI64GtU,
  kI64LeS, kI64LeU, kI64GeS, kI64GeU,
  kF32Eq, kF32Ne, kF32Lt, kF32Gt, kF32Le, kF32Ge,
  kF64Eq, kF64Ne, kF64Lt, kF64Gt, kF64Le, kF64Ge,
  kI32Clz, kI32Ctz, kI32Popcnt,
  kI32Add, kI32Sub, kI32Mul, kI32DivS, kI32DivU, kI32RemS, kI32RemU,
  kI32And, kI32Or, kI32Xor, kI32Shl, kI32ShrS, kI32ShrU, kI32Rotl, kI32Rotr,
  kI64Clz, kI64Ctz, kI64Popcnt,
  kI64Add, kI64Sub, kI64Mul, kI64DivS, kI64DivU, kI64RemS, kI64RemU,
  kI64And, kI64Or, kI64Xor, kI64Shl, kI64ShrS, kI64ShrU, kI64Rotl, kI64Rotr,
  kF32Abs, kF32Neg, kF32Ceil, kF32Floor, kF32Trunc, kF32Nearest, kF32Sqrt,
  kF32Add, kF32Sub, kF32Mul, kF32Div, kF32Min, kF32Max, kF32Copysign,
  kF64Abs, kF64Neg, kF64Ceil, kF64Floor, kF64Trunc, kF64Nearest, kF64Sqrt,
  kF64Add, kF64Sub, kF64Mul, kF64Div, kF64Min, kF64Max, kF64Copysign,
  kI32WrapI64,
  kI32TruncF32S, kI32TruncF32U, kI32TruncF64S, kI32TruncF64U,
  kI64ExtendI32S, kI64ExtendI32U,
  kI64TruncF32S, kI64TruncF32U, kI64TruncF64S, kI64TruncF64U,
  kF32ConvertI32S, kF32ConvertI32U, kF32ConvertI64S, kF32ConvertI64U,
  kF32DemoteF64,
  kF64ConvertI32S, kF64ConvertI32U, kF64ConvertI64S, kF64ConvertI64U,
  kF64PromoteF32,
  kI32ReinterpretF32, kI64ReinterpretF64, kF32ReinterpretI32, kF64ReinterpretI64,
  kI32Extend8S, kI32Extend16S, kI64Extend8S, kI64Extend16S, kI64Extend32S,
  // SIMD (mirrors the decoded 0xFD op space; lane semantics live once in
  // arith.h so all tiers agree bit-for-bit).
  kI8x16Splat, kI16x8Splat, kI32x4Splat, kI64x2Splat, kF32x4Splat, kF64x2Splat,
  // Extract: r[a].scalar = r[b].v128[imm]; the _s/_u narrow forms extend.
  kI8x16ExtractLaneS, kI8x16ExtractLaneU,
  kI16x8ExtractLaneS, kI16x8ExtractLaneU,
  kI32x4ExtractLane, kI64x2ExtractLane, kF32x4ExtractLane, kF64x2ExtractLane,
  // Replace: r[a] = r[b].v128 with lane imm set from scalar r[c].
  kI8x16ReplaceLane, kI16x8ReplaceLane, kI32x4ReplaceLane, kI64x2ReplaceLane,
  kF32x4ReplaceLane, kF64x2ReplaceLane,
  // Shuffle reads its 16 selector bytes from v128_pool[imm]; swizzle takes
  // them from r[c] at runtime.
  kI8x16Shuffle, kI8x16Swizzle,
  // Lane comparisons produce all-ones/all-zeros masks.
  kI8x16Eq, kI8x16Ne, kI8x16LtS, kI8x16LtU, kI8x16GtS, kI8x16GtU,
  kI8x16LeS, kI8x16LeU, kI8x16GeS, kI8x16GeU,
  kI16x8Eq, kI16x8Ne, kI16x8LtS, kI16x8LtU, kI16x8GtS, kI16x8GtU,
  kI16x8LeS, kI16x8LeU, kI16x8GeS, kI16x8GeU,
  kI32x4Eq, kI32x4Ne, kI32x4LtS, kI32x4LtU, kI32x4GtS, kI32x4GtU,
  kI32x4LeS, kI32x4LeU, kI32x4GeS, kI32x4GeU,
  kF32x4Eq, kF32x4Ne, kF32x4Lt, kF32x4Gt, kF32x4Le, kF32x4Ge,
  kF64x2Eq, kF64x2Ne, kF64x2Lt, kF64x2Gt, kF64x2Le, kF64x2Ge,
  kV128Not, kV128And, kV128AndNot, kV128Or, kV128Xor, kV128AnyTrue,
  // Bitselect: r[a] = bits of r[a] where mask r[c] is set, else r[b]
  // (a is both the "true" operand and the destination, like kSelect).
  kV128Bitselect,
  kI8x16Abs, kI8x16Neg, kI8x16AllTrue, kI8x16Add, kI8x16Sub,
  kI16x8Abs, kI16x8Neg, kI16x8AllTrue, kI16x8Add, kI16x8Sub, kI16x8Mul,
  kI32x4Abs, kI32x4Neg, kI32x4AllTrue,
  kI32x4Shl, kI32x4ShrS, kI32x4ShrU,
  kI32x4Add, kI32x4Sub, kI32x4Mul,
  kI32x4MinS, kI32x4MinU, kI32x4MaxS, kI32x4MaxU,
  kI64x2Abs, kI64x2Neg, kI64x2AllTrue,
  kI64x2Shl, kI64x2ShrS, kI64x2ShrU,
  kI64x2Add, kI64x2Sub, kI64x2Mul,
  kF32x4Abs, kF32x4Neg, kF32x4Sqrt,
  kF32x4Add, kF32x4Sub, kF32x4Mul, kF32x4Div,
  kF32x4Min, kF32x4Max, kF32x4Pmin, kF32x4Pmax,
  kF64x2Abs, kF64x2Neg, kF64x2Sqrt,
  kF64x2Add, kF64x2Sub, kF64x2Mul, kF64x2Div,
  kF64x2Min, kF64x2Max, kF64x2Pmin, kF64x2Pmax,
  // ---- Fused forms emitted only by the Optimizing tier ----
  kI32AddImm,    // r[a] = r[b] + i32(imm)
  kI64AddImm,    // r[a] = r[b] + i64(imm)
  kI32ShlImm, kI32ShrUImm, kI32AndImm, kI32MulImm,
  // Fused compare-and-branch: taken if cmp(r[a], r[b]); target in imm.
  kBrIfI32Eq, kBrIfI32Ne, kBrIfI32LtS, kBrIfI32LtU, kBrIfI32GtS, kBrIfI32GtU,
  kBrIfI32LeS, kBrIfI32LeU, kBrIfI32GeS, kBrIfI32GeU,
  kF64MulAdd,    // r[a] = r[b] * r[c] + r[d]
  kF32MulAdd,    // r[a] = r[b] * r[c] + r[d] (f32; two roundings, not fma())
  // Fused compare-and-select: r[a] = cmp(r[c], r[d]) ? r[a] : r[b].
  kSelectI32Eq, kSelectI32Ne, kSelectI32LtS, kSelectI32LtU,
  kSelectI32GtS, kSelectI32GtU, kSelectF64Lt, kSelectF64Gt,
  // Fused load+op: r[a] = r[c] op mem[r[b].u32 + imm] (bounds-checked).
  // The v128 forms are emitted only when EngineConfig::opt_simd is on.
  kI32LoadAdd, kI64LoadAdd, kF32LoadAdd, kF64LoadAdd, kF32LoadMul, kF64LoadMul,
  kI32x4LoadAdd, kF32x4LoadAdd, kF32x4LoadMul, kF64x2LoadAdd, kF64x2LoadMul,
  // Fused op+store: mem[r[a].u32 + imm] = r[b] op r[c] (bounds-checked).
  kI32AddStore, kF32AddStore, kF64AddStore, kF64MulStore,
  kI32x4AddStore, kF32x4AddStore, kF64x2AddStore, kF64x2MulStore,
  // Indexed addressing, checked: addr = u32(r[b] + (r[c] << d)) + imm.
  kI32LoadIx, kI64LoadIx, kF32LoadIx, kF64LoadIx, kV128LoadIx,
  // Indexed stores, checked: mem[u32(r[a] + (r[c] << d)) + imm] = r[b].
  kI32StoreIx, kI64StoreIx, kF32StoreIx, kF64StoreIx, kV128StoreIx,
  // ---- Bounds-check hoisting (emitted only by the hoist pass) ----
  // Loop-entry guard for a versioned counted loop: r[a] = 1 iff every raw
  // access of the fast copy is provably in-bounds for all iterations.
  // b = limit reg, c = counter reg, d = max coefficient (bit 31: the loop
  // head compares unsigned), imm = (step << 48) | max constant term.
  kMemGuard,
  // Unchecked twins of the checked memory ops; only reachable behind a
  // passing kMemGuard, so they can never fault.
  kI32LoadRaw, kI64LoadRaw, kF32LoadRaw, kF64LoadRaw, kV128LoadRaw,
  kI32StoreRaw, kI64StoreRaw, kF32StoreRaw, kF64StoreRaw, kV128StoreRaw,
  kI32LoadIxRaw, kI64LoadIxRaw, kF32LoadIxRaw, kF64LoadIxRaw, kV128LoadIxRaw,
  kI32StoreIxRaw, kI64StoreIxRaw, kF32StoreIxRaw, kF64StoreIxRaw,
  kV128StoreIxRaw,
  // ---- 0xFE atomics (threads proposal; cache v7) ----
  // All atomic accesses are seq-cst, bounds-checked, and trap on effective
  // addresses that are not naturally aligned. Optimizer passes must treat
  // every atomic op as a full optimization barrier: no fusion, hoisting, or
  // superinstruction formation across or into them.
  // Wait/notify: r[a] = result. notify: addr r[b], count r[c].
  // wait32/wait64: addr r[b], expected r[c], timeout_ns (i64) r[d].
  kAtomicNotify, kAtomicWait32, kAtomicWait64,
  kAtomicFence,
  // Atomic loads: r[a] = atomic mem[r[b].u32 + imm] (narrow: zero-extend).
  kI32AtomicLoad, kI64AtomicLoad,
  kI32AtomicLoad8U, kI32AtomicLoad16U,
  kI64AtomicLoad8U, kI64AtomicLoad16U, kI64AtomicLoad32U,
  // Atomic stores: atomic mem[r[a].u32 + imm] = r[b].
  kI32AtomicStore, kI64AtomicStore,
  kI32AtomicStore8, kI32AtomicStore16,
  kI64AtomicStore8, kI64AtomicStore16, kI64AtomicStore32,
  // Atomic RMW: r[a] = old value at mem[r[b].u32 + imm]; operand r[c].
  // NOTE: the lowering reuses the address slot as the destination (a == b),
  // so handlers must read every input before writing r[a].
  kI32AtomicRmwAdd, kI64AtomicRmwAdd,
  kI32AtomicRmw8AddU, kI32AtomicRmw16AddU,
  kI64AtomicRmw8AddU, kI64AtomicRmw16AddU, kI64AtomicRmw32AddU,
  kI32AtomicRmwSub, kI64AtomicRmwSub,
  kI32AtomicRmw8SubU, kI32AtomicRmw16SubU,
  kI64AtomicRmw8SubU, kI64AtomicRmw16SubU, kI64AtomicRmw32SubU,
  kI32AtomicRmwAnd, kI64AtomicRmwAnd,
  kI32AtomicRmw8AndU, kI32AtomicRmw16AndU,
  kI64AtomicRmw8AndU, kI64AtomicRmw16AndU, kI64AtomicRmw32AndU,
  kI32AtomicRmwOr, kI64AtomicRmwOr,
  kI32AtomicRmw8OrU, kI32AtomicRmw16OrU,
  kI64AtomicRmw8OrU, kI64AtomicRmw16OrU, kI64AtomicRmw32OrU,
  kI32AtomicRmwXor, kI64AtomicRmwXor,
  kI32AtomicRmw8XorU, kI32AtomicRmw16XorU,
  kI64AtomicRmw8XorU, kI64AtomicRmw16XorU, kI64AtomicRmw32XorU,
  kI32AtomicRmwXchg, kI64AtomicRmwXchg,
  kI32AtomicRmw8XchgU, kI32AtomicRmw16XchgU,
  kI64AtomicRmw8XchgU, kI64AtomicRmw16XchgU, kI64AtomicRmw32XchgU,
  // Cmpxchg: r[a] = old; addr r[b], expected r[c], replacement r[d].
  kI32AtomicRmwCmpxchg, kI64AtomicRmwCmpxchg,
  kI32AtomicRmw8CmpxchgU, kI32AtomicRmw16CmpxchgU,
  kI64AtomicRmw8CmpxchgU, kI64AtomicRmw16CmpxchgU, kI64AtomicRmw32CmpxchgU,

  kCount,
};

/// Whether `op` is one of the atomic RegCode ops (contiguous range).
inline bool rop_is_atomic(ROp op) {
  return op >= ROp::kAtomicNotify && op < ROp::kCount;
}

const char* rop_name(ROp op);

struct RInstr {
  ROp op = ROp::kNop;
  u32 a = 0, b = 0, c = 0, d = 0;
  u64 imm = 0;
};

// --- JIT blob metadata (cache v6 native section) ---------------------------
//
// The template JIT (jit_x64.h) compiles an RFunc into a position-independent
// machine-code blob. The only position-dependent sites are the absolute
// helper addresses in `movabs rax, imm64; call rax` sequences; each is
// recorded as a relocation so the blob can be re-patched when installed into
// a different process (cache hits run under a different ASLR layout, and
// helper addresses move with every build).

/// One helper-address patch site: the imm64 at `code[offset..offset+8)` must
/// be overwritten with jit_helper_address(helper) at install time.
struct JitReloc {
  u32 offset = 0;
  u32 helper = 0;
};

/// A compiled native body plus everything needed to validate and install it
/// in another process. `cpu_features` is the jit_cpu_features() word the
/// emitter ran under; `layout_hash` pins the codegen version and the Slot /
/// ROp / helper-table layouts the templates hard-code. A blob whose features
/// are not a subset of the host's, or whose layout hash disagrees, is
/// silently dropped and the function runs threaded RegCode instead.
struct JitBlob {
  u32 cpu_features = 0;
  u64 layout_hash = 0;
  std::vector<u8> code;
  std::vector<JitReloc> relocs;
};

/// One lowered function.
struct RFunc {
  u32 num_params = 0;
  u32 num_locals = 0;  // params + declared locals
  u32 num_regs = 0;    // locals + max stack depth
  bool has_result = false;
  std::vector<RInstr> code;
  std::vector<wasm::V128> v128_pool;
  std::vector<std::vector<u32>> br_pool;  // br_table target lists (default last)
  // Direct-threading handler addresses, parallel to `code`. Derived (never
  // serialized): filled by prepare_rfunc() at publication time; empty means
  // the portable switch loop executes this body. See exec.h.
  std::vector<const void*> handlers;
  // Native machine code for this body (jit tier / tiered jit promotions);
  // null when the function was not JIT-compiled or had an untemplatable op.
  // Serialized by cache v6 as the per-function native section.
  std::shared_ptr<const JitBlob> jit;
  // Derived (never serialized): the installed executable entry point in this
  // process's JIT arena. Null means execute `code` through exec_regcode.
  // Only written at publication time, before the body becomes visible.
  void (*jit_entry)(void*) = nullptr;

  std::string to_string() const;  // disassembly, for tests/debugging
};

/// A lowered module: RFuncs parallel to Module::bodies.
struct RModule {
  std::vector<RFunc> funcs;
  u64 instruction_count() const {
    u64 n = 0;
    for (const auto& f : funcs) n += f.code.size();
    return n;
  }
};

}  // namespace mpiwasm::rt
