#include "runtime/memory.h"

#include <sys/mman.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace mpiwasm::rt {

namespace {
// Virtual reservation ceiling for modules that declare no maximum. Virtual
// space is free with MAP_NORESERVE; physical pages are committed only when
// touched, so this does not inflate RSS with many rank instances.
constexpr u32 kDefaultMaxPages = 16384;  // 1 GiB virtual per module
}  // namespace

/// Growth lock plus the futex-style parking table for wait/notify. The map
/// is node-based, so a ParkCell (and its condition_variable) never moves
/// while waiters sleep on it.
///
/// Wakes are delivered to specific waiters (FIFO), not to a shared token
/// pool: a pooled token can be stolen by a thread that re-parks on the same
/// address after being woken (worker loops do exactly this), leaving the
/// waiters the notify was meant for asleep forever. Each park_wait call
/// queues its own stack node; notify flips the flag on the first `count`
/// queued nodes, so a late (re-)parker can never consume another waiter's
/// wake.
struct LinearMemory::MemSync {
  std::mutex grow_mu;
  std::mutex park_mu;
  struct ParkWaiter {
    bool woken = false;
  };
  struct ParkCell {
    std::condition_variable cv;
    std::deque<ParkWaiter*> queue;  // parked, not yet woken (FIFO)
    u32 active = 0;                 // waiters inside park_wait on this cell
  };
  std::unordered_map<u64, ParkCell> park;
};

LinearMemory::LinearMemory() : sync_(std::make_unique<MemSync>()) {}

LinearMemory::LinearMemory(u32 min_pages, u32 max_pages, bool shared)
    : shared_(shared), sync_(std::make_unique<MemSync>()) {
  pages_.store(min_pages, std::memory_order_relaxed);
  max_pages_ = max_pages == 0 ? std::max(min_pages, kDefaultMaxPages)
                              : std::min(max_pages, wasm::kMaxPages);
  max_pages_ = std::max(max_pages_, min_pages);
  reserved_bytes_ = u64(max_pages_) * wasm::kPageSize;
  void* p = ::mmap(nullptr, reserved_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) fatal("mmap failed reserving linear memory");
  base_ = static_cast<u8*>(p);
}

LinearMemory::~LinearMemory() { release(); }

void LinearMemory::release() {
  if (base_ != nullptr) {
    ::munmap(base_, reserved_bytes_);
    base_ = nullptr;
  }
}

LinearMemory::LinearMemory(LinearMemory&& o) noexcept
    : base_(o.base_),
      reserved_bytes_(o.reserved_bytes_),
      max_pages_(o.max_pages_),
      shared_(o.shared_),
      sync_(std::move(o.sync_)) {
  pages_.store(o.pages_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  generation_.store(o.generation_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  o.base_ = nullptr;
  o.reserved_bytes_ = 0;
  o.pages_.store(0, std::memory_order_relaxed);
}

LinearMemory& LinearMemory::operator=(LinearMemory&& o) noexcept {
  if (this != &o) {
    release();
    base_ = o.base_;
    reserved_bytes_ = o.reserved_bytes_;
    max_pages_ = o.max_pages_;
    shared_ = o.shared_;
    sync_ = std::move(o.sync_);
    pages_.store(o.pages_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    generation_.store(o.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    o.base_ = nullptr;
    o.reserved_bytes_ = 0;
    o.pages_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

i32 LinearMemory::grow(u32 delta_pages) {
  std::lock_guard<std::mutex> lock(sync_->grow_mu);
  u32 prev = pages_.load(std::memory_order_relaxed);
  u64 target = u64(prev) + delta_pages;
  if (target > max_pages_) return -1;
  pages_.store(u32(target), std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return i32(prev);
}

namespace {

/// Shared wait implementation: the expected-value check happens under
/// park_mu, which notify also holds while minting wake tokens, so a
/// peer's store+notify between our check and the sleep cannot be lost.
template <typename T, typename Park>
u32 park_wait(Park& s, u8* base, u64 addr, T expected, i64 timeout_ns) {
  std::unique_lock<std::mutex> lock(s.park_mu);
  T current = std::atomic_ref<T>(*reinterpret_cast<T*>(base + addr))
                  .load(std::memory_order_seq_cst);
  if (current != expected) return 1;
  auto& cell = s.park[addr];
  ++cell.active;
  typename Park::ParkWaiter self;
  cell.queue.push_back(&self);
  auto woken = [&] { return self.woken; };
  if (timeout_ns < 0) {
    cell.cv.wait(lock, woken);
  } else {
    cell.cv.wait_for(lock, std::chrono::nanoseconds(timeout_ns), woken);
    if (!self.woken) {
      // Timed out: unlink so notify never hands a wake to a dead node.
      auto it = std::find(cell.queue.begin(), cell.queue.end(), &self);
      if (it != cell.queue.end()) cell.queue.erase(it);
    }
  }
  bool got_wake = self.woken;
  // The cell (and its cv) must outlive every waiter still draining, so it
  // is erased only when the last one leaves.
  if (--cell.active == 0) s.park.erase(addr);
  return got_wake ? 0 : 2;
}

}  // namespace

u32 LinearMemory::atomic_notify(u64 addr, u32 count) {
  check_atomic(addr, 4);
  std::lock_guard<std::mutex> lock(sync_->park_mu);
  auto it = sync_->park.find(addr);
  if (it == sync_->park.end()) return 0;
  auto& cell = it->second;
  u32 woken = 0;
  while (woken < count && !cell.queue.empty()) {
    cell.queue.front()->woken = true;
    cell.queue.pop_front();
    ++woken;
  }
  if (woken > 0) cell.cv.notify_all();
  return woken;
}

u32 LinearMemory::atomic_wait32(u64 addr, u32 expected, i64 timeout_ns) {
  check_atomic(addr, 4);
  return park_wait<u32>(*sync_, base_, addr, expected, timeout_ns);
}

u32 LinearMemory::atomic_wait64(u64 addr, u64 expected, i64 timeout_ns) {
  check_atomic(addr, 8);
  return park_wait<u64>(*sync_, base_, addr, expected, timeout_ns);
}

}  // namespace mpiwasm::rt
