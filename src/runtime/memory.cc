#include "runtime/memory.h"

#include <sys/mman.h>

#include <algorithm>

namespace mpiwasm::rt {

namespace {
// Virtual reservation ceiling for modules that declare no maximum. Virtual
// space is free with MAP_NORESERVE; physical pages are committed only when
// touched, so this does not inflate RSS with many rank instances.
constexpr u32 kDefaultMaxPages = 16384;  // 1 GiB virtual per module
}  // namespace

LinearMemory::LinearMemory(u32 min_pages, u32 max_pages) {
  pages_ = min_pages;
  max_pages_ = max_pages == 0 ? std::max(min_pages, kDefaultMaxPages)
                              : std::min(max_pages, wasm::kMaxPages);
  max_pages_ = std::max(max_pages_, min_pages);
  reserved_bytes_ = u64(max_pages_) * wasm::kPageSize;
  void* p = ::mmap(nullptr, reserved_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) fatal("mmap failed reserving linear memory");
  base_ = static_cast<u8*>(p);
}

LinearMemory::~LinearMemory() { release(); }

void LinearMemory::release() {
  if (base_ != nullptr) {
    ::munmap(base_, reserved_bytes_);
    base_ = nullptr;
  }
}

LinearMemory::LinearMemory(LinearMemory&& o) noexcept
    : base_(o.base_),
      reserved_bytes_(o.reserved_bytes_),
      pages_(o.pages_),
      max_pages_(o.max_pages_),
      generation_(o.generation_) {
  o.base_ = nullptr;
  o.reserved_bytes_ = 0;
  o.pages_ = 0;
}

LinearMemory& LinearMemory::operator=(LinearMemory&& o) noexcept {
  if (this != &o) {
    release();
    base_ = o.base_;
    reserved_bytes_ = o.reserved_bytes_;
    pages_ = o.pages_;
    max_pages_ = o.max_pages_;
    generation_ = o.generation_;
    o.base_ = nullptr;
    o.reserved_bytes_ = 0;
    o.pages_ = 0;
  }
  return *this;
}

i32 LinearMemory::grow(u32 delta_pages) {
  u64 target = u64(pages_) + delta_pages;
  if (target > max_pages_) return -1;
  u32 prev = pages_;
  pages_ = u32(target);
  ++generation_;
  return i32(prev);
}

}  // namespace mpiwasm::rt
