// Shared numeric semantics for every execution tier.
//
// Each Wasm numeric instruction is implemented exactly once here, with spec
// trap behaviour (division by zero, INT_MIN/-1 overflow, NaN/out-of-range
// float->int truncation, NaN-propagating min/max). Both the RegCode
// executor and the interpreter tier call these, so differential tests
// across tiers exercise dispatch logic, not divergent math.
#pragma once

#include <bit>
#include <cmath>
#include <limits>
#include <type_traits>

#include "runtime/value.h"

namespace mpiwasm::rt::arith {

// --- Integer division/remainder with Wasm trap semantics -----------------

inline i32 i32_div_s(i32 a, i32 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i32.div_s");
  if (a == std::numeric_limits<i32>::min() && b == -1)
    throw Trap(TrapKind::kIntegerOverflow, "i32.div_s overflow");
  return a / b;
}
inline u32 i32_div_u(u32 a, u32 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i32.div_u");
  return a / b;
}
inline i32 i32_rem_s(i32 a, i32 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i32.rem_s");
  if (a == std::numeric_limits<i32>::min() && b == -1) return 0;
  return a % b;
}
inline u32 i32_rem_u(u32 a, u32 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i32.rem_u");
  return a % b;
}
inline i64 i64_div_s(i64 a, i64 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i64.div_s");
  if (a == std::numeric_limits<i64>::min() && b == -1)
    throw Trap(TrapKind::kIntegerOverflow, "i64.div_s overflow");
  return a / b;
}
inline u64 i64_div_u(u64 a, u64 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i64.div_u");
  return a / b;
}
inline i64 i64_rem_s(i64 a, i64 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i64.rem_s");
  if (a == std::numeric_limits<i64>::min() && b == -1) return 0;
  return a % b;
}
inline u64 i64_rem_u(u64 a, u64 b) {
  if (b == 0) throw Trap(TrapKind::kIntegerDivByZero, "i64.rem_u");
  return a % b;
}

// --- Shifts / rotates (count taken mod bit width, per spec) ---------------

inline u32 i32_shl(u32 a, u32 n) { return a << (n & 31); }
inline i32 i32_shr_s(i32 a, u32 n) { return a >> (n & 31); }
inline u32 i32_shr_u(u32 a, u32 n) { return a >> (n & 31); }
inline u32 i32_rotl(u32 a, u32 n) { return std::rotl(a, int(n & 31)); }
inline u32 i32_rotr(u32 a, u32 n) { return std::rotr(a, int(n & 31)); }
inline u64 i64_shl(u64 a, u64 n) { return a << (n & 63); }
inline i64 i64_shr_s(i64 a, u64 n) { return a >> (n & 63); }
inline u64 i64_shr_u(u64 a, u64 n) { return a >> (n & 63); }
inline u64 i64_rotl(u64 a, u64 n) { return std::rotl(a, int(n & 63)); }
inline u64 i64_rotr(u64 a, u64 n) { return std::rotr(a, int(n & 63)); }

// --- Float min/max/nearest with Wasm NaN semantics ------------------------

template <typename F>
inline F fmin_wasm(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == 0 && b == 0) return std::signbit(a) ? a : b;  // -0 < +0
  return a < b ? a : b;
}
template <typename F>
inline F fmax_wasm(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == 0 && b == 0) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}
template <typename F>
inline F fnearest(F v) {
  // Round half to even: default FP environment rounding via rint.
  return std::rint(v);
}

// --- Trapping float -> int truncation -------------------------------------

template <typename To, typename From>
inline To trunc_checked(From v, const char* what) {
  if (std::isnan(v)) throw Trap(TrapKind::kInvalidConversion, what);
  From t = std::trunc(v);
  // Exact-boundary comparisons in double space. The min bound for signed
  // types is exactly representable; the max bound (2^31 or 2^63) must be
  // excluded with >=.
  f64 d = f64(t);
  if constexpr (std::is_same_v<To, i32>) {
    if (d < -2147483648.0 || d >= 2147483648.0)
      throw Trap(TrapKind::kInvalidConversion, what);
  } else if constexpr (std::is_same_v<To, u32>) {
    if (d <= -1.0 || d >= 4294967296.0)
      throw Trap(TrapKind::kInvalidConversion, what);
  } else if constexpr (std::is_same_v<To, i64>) {
    if (d < -9223372036854775808.0 || d >= 9223372036854775808.0)
      throw Trap(TrapKind::kInvalidConversion, what);
  } else if constexpr (std::is_same_v<To, u64>) {
    if (d <= -1.0 || d >= 18446744073709551616.0)
      throw Trap(TrapKind::kInvalidConversion, what);
  }
  return To(t);
}

// --- SIMD lane helpers -----------------------------------------------------
//
// Every v128 instruction is implemented once here over plain lane loops so
// the interpreter and both regcode executors share one semantics. The loops
// have compile-time trip counts over 16 contiguous bytes, which GCC/Clang
// auto-vectorize to host SIMD at -O2 — no intrinsics needed, keeping every
// target the paper cares about (x86-64, Graviton2) on the fast path.

template <typename T, int N, typename F>
inline V128 v128_binop(const V128& x, const V128& y, F f) {
  V128 out{};
  for (int i = 0; i < N; ++i)
    out.set_lane<T, N>(i, T(f(x.lane<T, N>(i), y.lane<T, N>(i))));
  return out;
}

template <typename T, int N, typename F>
inline V128 v128_unop(const V128& x, F f) {
  V128 out{};
  for (int i = 0; i < N; ++i) out.set_lane<T, N>(i, T(f(x.lane<T, N>(i))));
  return out;
}

/// Lane-wise comparison producing the all-ones / all-zeros lane mask the
/// spec requires (usable as a v128.bitselect mask).
template <typename T, int N, typename F>
inline V128 v128_cmp(const V128& x, const V128& y, F f) {
  using U = std::make_unsigned_t<
      std::conditional_t<std::is_floating_point_v<T>,
                         std::conditional_t<sizeof(T) == 4, u32, u64>, T>>;
  V128 out{};
  for (int i = 0; i < N; ++i)
    out.set_lane<U, N>(i, f(x.lane<T, N>(i), y.lane<T, N>(i)) ? U(~U(0)) : U(0));
  return out;
}

/// Shift count taken modulo the lane width, per spec; T's signedness picks
/// shr_s vs shr_u.
template <typename T, int N>
inline V128 v128_shl(const V128& x, u32 n) {
  const u32 k = n & (sizeof(T) * 8 - 1);
  V128 out{};
  for (int i = 0; i < N; ++i)
    out.set_lane<T, N>(i, T(x.lane<T, N>(i) << k));
  return out;
}
template <typename T, int N>
inline V128 v128_shr(const V128& x, u32 n) {
  const u32 k = n & (sizeof(T) * 8 - 1);
  V128 out{};
  for (int i = 0; i < N; ++i)
    out.set_lane<T, N>(i, T(x.lane<T, N>(i) >> k));
  return out;
}

/// Wrapping two's-complement |x| (abs(INT_MIN) == INT_MIN, per spec).
template <typename T>
inline T lane_iabs(T x) {
  using U = std::make_unsigned_t<T>;
  return x < 0 ? T(U(0) - U(x)) : x;
}

/// pmin/pmax are the C-style b<a selects (no NaN canonicalization), unlike
/// fmin_wasm/fmax_wasm which propagate NaN.
template <typename F>
inline F lane_pmin(F a, F b) { return b < a ? b : a; }
template <typename F>
inline F lane_pmax(F a, F b) { return a < b ? b : a; }

template <typename T, int N>
inline bool v128_all_true(const V128& x) {
  for (int i = 0; i < N; ++i)
    if (x.lane<T, N>(i) == 0) return false;
  return true;
}

inline V128 v128_bitop_and(const V128& x, const V128& y) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = x.bytes[i] & y.bytes[i];
  return out;
}
inline V128 v128_bitop_or(const V128& x, const V128& y) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = x.bytes[i] | y.bytes[i];
  return out;
}
inline V128 v128_bitop_xor(const V128& x, const V128& y) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = x.bytes[i] ^ y.bytes[i];
  return out;
}
inline V128 v128_not(const V128& x) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = u8(~x.bytes[i]);
  return out;
}
inline i32 v128_any_true(const V128& x) {
  for (int i = 0; i < 16; ++i)
    if (x.bytes[i] != 0) return 1;
  return 0;
}
inline V128 i8x16_eq(const V128& x, const V128& y) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = x.bytes[i] == y.bytes[i] ? 0xFF : 0x00;
  return out;
}
inline V128 v128_bitop_andnot(const V128& x, const V128& y) {
  V128 out{};
  for (int i = 0; i < 16; ++i) out.bytes[i] = x.bytes[i] & u8(~y.bytes[i]);
  return out;
}
/// bitselect(v1, v2, mask): bits of v1 where mask is 1, else v2.
inline V128 v128_bitselect(const V128& v1, const V128& v2, const V128& mask) {
  V128 out{};
  for (int i = 0; i < 16; ++i)
    out.bytes[i] = u8((v1.bytes[i] & mask.bytes[i]) |
                      (v2.bytes[i] & u8(~mask.bytes[i])));
  return out;
}
/// swizzle: per-byte table lookup into x; selector >= 16 yields 0.
inline V128 i8x16_swizzle(const V128& x, const V128& sel) {
  V128 out{};
  for (int i = 0; i < 16; ++i)
    out.bytes[i] = sel.bytes[i] < 16 ? x.bytes[sel.bytes[i]] : u8(0);
  return out;
}
/// shuffle: immediate selectors (< 32) index the concatenation x ++ y.
inline V128 i8x16_shuffle(const V128& x, const V128& y, const V128& lanes) {
  V128 out{};
  for (int i = 0; i < 16; ++i) {
    u8 s = lanes.bytes[i];
    out.bytes[i] = s < 16 ? x.bytes[s] : y.bytes[s - 16];
  }
  return out;
}

}  // namespace mpiwasm::rt::arith
