#include "runtime/interp.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>

#include "runtime/arith.h"
#include "runtime/engine.h"
#include "runtime/instance.h"

namespace mpiwasm::rt {

using wasm::InstrView;
using wasm::Op;
using namespace arith;

namespace {

/// Predecode-time control frame.
struct PFrame {
  enum Kind { kBlock, kLoop, kIf } kind = kBlock;
  bool has_result = false;
  bool entered_live = true;
  u32 entry_height = 0;
  u32 loop_pos = 0;
  std::vector<size_t> fixups;  // instr indices whose PreBr.target -> end pos
  size_t else_fixup = SIZE_MAX;
};

}  // namespace

PreFunc predecode_function(const wasm::Module& m, u32 defined_index) {
  const wasm::FuncBody& body = m.bodies.at(defined_index);
  const wasm::FuncType& ft = m.func_type(m.num_imported_funcs() + defined_index);

  PreFunc out;
  out.num_params = u32(ft.params.size());
  out.num_locals = out.num_params + u32(body.locals.size());
  out.has_result = !ft.results.empty();

  // First pass: decode every instruction (this is the tier's whole
  // "compile" step — it removes LEB decoding from the execution loop).
  wasm::InstrReader reader({body.code.data(), body.code.size()});
  while (!reader.done()) out.code.push_back(reader.next());
  out.br.assign(out.code.size(), PreBr{});

  // Second pass: resolve structured control to absolute targets, tracking
  // operand stack heights exactly like the Baseline lowering does.
  std::vector<PFrame> frames;
  frames.push_back(PFrame{PFrame::kBlock, out.has_result, true, 0, 0, {}, SIZE_MAX});
  u32 h = 0;
  u32 max_h = 0;
  bool live = true;
  auto bump = [&](i64 delta) {
    MW_CHECK(delta >= 0 || h >= u32(-delta), "predecode: stack underflow");
    h = u32(i64(h) + delta);
    max_h = std::max(max_h, h);
  };
  auto frame_at = [&](u32 depth) -> PFrame& {
    MW_CHECK(depth < frames.size(), "predecode: bad depth");
    return frames[frames.size() - 1 - depth];
  };
  auto make_branch = [&](u32 depth, size_t at) {
    PFrame& f = frame_at(depth);
    if (f.kind == PFrame::kLoop) {
      out.br[at] = PreBr{f.loop_pos, f.entry_height, 0, UINT32_MAX};
    } else {
      out.br[at] = PreBr{0, f.entry_height, u8(f.has_result ? 1 : 0), UINT32_MAX};
      f.fixups.push_back(at);
    }
  };
  // br_table trampolines don't exist in the interp tier; each table entry
  // holds its own PreBr, patched via (table_index, entry_index) keys.
  struct TableFixup {
    u32 table;
    u32 entry;
  };
  // Per-frame pending table fixups, parallel to `frames`.
  std::vector<std::vector<TableFixup>> frame_table_fixups(1);

  for (size_t i = 0; i < out.code.size(); ++i) {
    InstrView& in = out.code[i];
    if (!live) {
      switch (in.op) {
        case Op::kBlock: case Op::kLoop: case Op::kIf:
          frames.push_back(PFrame{
              in.op == Op::kLoop ? PFrame::kLoop
              : in.op == Op::kIf ? PFrame::kIf
                                 : PFrame::kBlock,
              in.block_type != wasm::kBlockTypeEmpty, false, h, u32(i), {},
              SIZE_MAX});
          frame_table_fixups.emplace_back();
          break;
        case Op::kElse: {
          PFrame& f = frames.back();
          if (f.entered_live) {
            if (f.else_fixup != SIZE_MAX) {
              out.br[f.else_fixup].target = u32(i + 1);
              f.else_fixup = SIZE_MAX;
            }
            // Else itself, when reached from the then branch, jumps to end.
            f.fixups.push_back(i);
            out.br[i] =
                PreBr{0, f.entry_height, u8(f.has_result ? 1 : 0), UINT32_MAX};
            h = f.entry_height;
            live = true;
          }
          break;
        }
        case Op::kEnd: {
          PFrame f = frames.back();
          frames.pop_back();
          auto tf = frame_table_fixups.back();
          frame_table_fixups.pop_back();
          h = f.entry_height + (f.has_result ? 1 : 0);
          max_h = std::max(max_h, h);
          if (f.entered_live) {
            for (size_t at : f.fixups) out.br[at].target = u32(i);
            for (auto [t, e] : tf) out.tables[t][e].target = u32(i);
            if (f.else_fixup != SIZE_MAX) out.br[f.else_fixup].target = u32(i);
            live = true;
          }
          break;
        }
        default:
          break;
      }
      continue;
    }

    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
        frames.push_back(PFrame{
            in.op == Op::kLoop ? PFrame::kLoop : PFrame::kBlock,
            in.block_type != wasm::kBlockTypeEmpty, true, h, u32(i), {},
            SIZE_MAX});
        frame_table_fixups.emplace_back();
        break;
      case Op::kIf:
        bump(-1);
        frames.push_back(PFrame{PFrame::kIf,
                                in.block_type != wasm::kBlockTypeEmpty, true, h,
                                u32(i), {}, SIZE_MAX});
        frame_table_fixups.emplace_back();
        frames.back().else_fixup = i;
        out.br[i] = PreBr{0, h, 0, UINT32_MAX};
        break;
      case Op::kElse: {
        PFrame& f = frames.back();
        f.fixups.push_back(i);
        out.br[i] = PreBr{0, f.entry_height, u8(f.has_result ? 1 : 0), UINT32_MAX};
        MW_CHECK(f.else_fixup != SIZE_MAX, "predecode: else without if");
        out.br[f.else_fixup].target = u32(i + 1);
        f.else_fixup = SIZE_MAX;
        h = f.entry_height;
        break;
      }
      case Op::kEnd: {
        PFrame f = frames.back();
        frames.pop_back();
        auto tf = frame_table_fixups.back();
        frame_table_fixups.pop_back();
        for (size_t at : f.fixups) out.br[at].target = u32(i);
        for (auto [t, e] : tf) out.tables[t][e].target = u32(i);
        if (f.else_fixup != SIZE_MAX) out.br[f.else_fixup].target = u32(i);
        h = f.entry_height + (f.has_result ? 1 : 0);
        max_h = std::max(max_h, h);
        break;
      }
      case Op::kBr:
        make_branch(in.idx(), i);
        live = false;
        break;
      case Op::kBrIf:
        bump(-1);
        make_branch(in.idx(), i);
        break;
      case Op::kBrTable: {
        bump(-1);
        u32 table_index = u32(out.tables.size());
        out.tables.emplace_back();
        std::vector<u32> all = in.br_targets;
        all.push_back(in.br_default);
        for (u32 k = 0; k < all.size(); ++k) {
          PFrame& f = frame_at(all[k]);
          if (f.kind == PFrame::kLoop) {
            out.tables[table_index].push_back(
                PreBr{f.loop_pos, f.entry_height, 0, UINT32_MAX});
          } else {
            out.tables[table_index].push_back(
                PreBr{0, f.entry_height, u8(f.has_result ? 1 : 0), UINT32_MAX});
            size_t fdepth = frames.size() - 1 - all[k];
            frame_table_fixups[fdepth].push_back({table_index, k});
          }
        }
        out.br[i] = PreBr{0, 0, 0, table_index};
        live = false;
        break;
      }
      case Op::kReturn:
        live = false;
        break;
      case Op::kUnreachable:
        live = false;
        break;
      case Op::kCall: {
        const wasm::FuncType& cft = m.func_type(in.idx());
        // Stash arity in otherwise-unused memarg fields for the executor.
        in.mem_align = u32(cft.params.size());
        in.mem_offset = cft.results.empty() ? 0 : 1;
        bump(-i64(cft.params.size()));
        if (!cft.results.empty()) bump(1);
        break;
      }
      case Op::kCallIndirect: {
        const wasm::FuncType& cft = m.types.at(in.indirect_type_index);
        in.mem_align = u32(cft.params.size());
        in.mem_offset = cft.results.empty() ? 0 : 1;
        bump(-1);
        bump(-i64(cft.params.size()));
        if (!cft.results.empty()) bump(1);
        break;
      }
      case Op::kDrop: bump(-1); break;
      case Op::kSelect: bump(-2); break;
      case Op::kLocalGet: bump(1); break;
      case Op::kLocalSet: bump(-1); break;
      case Op::kLocalTee: break;
      case Op::kGlobalGet: bump(1); break;
      case Op::kGlobalSet: bump(-1); break;
      case Op::kMemorySize: bump(1); break;
      case Op::kMemoryGrow: break;
      case Op::kMemoryCopy: case Op::kMemoryFill: bump(-3); break;
      case Op::kI32Const: case Op::kI64Const: case Op::kF32Const:
      case Op::kF64Const: case Op::kV128Const:
        bump(1);
        break;
      case Op::kNop: break;
      default: {
        // Numeric / memory ops: net stack effect from the opcode shape.
        using wasm::ImmKind;
        if (wasm::op_is_atomic(in.op)) {
          // 0xFE space; the generic kMemArg load/store split below doesn't
          // know these shapes, so handle each family explicitly.
          const u16 code = u16(in.op);
          if (in.op == Op::kMemoryAtomicNotify) {
            bump(-1);  // addr, count -> woken
          } else if (in.op == Op::kMemoryAtomicWait32 ||
                     in.op == Op::kMemoryAtomicWait64) {
            bump(-2);  // addr, expected, timeout -> outcome
          } else if (in.op == Op::kAtomicFence) {
            // net 0
          } else if (code >= u16(Op::kI32AtomicLoad) &&
                     code <= u16(Op::kI64AtomicLoad32U)) {
            // load: addr -> value, net 0
          } else if (code >= u16(Op::kI32AtomicStore) &&
                     code <= u16(Op::kI64AtomicStore32)) {
            bump(-2);  // addr, value ->
          } else if (code >= u16(Op::kI32AtomicRmwCmpxchg)) {
            bump(-2);  // addr, expected, replacement -> old
          } else {
            bump(-1);  // rmw: addr, operand -> old
          }
        } else if (wasm::op_imm_kind(in.op) == ImmKind::kMemArg) {
          // load: -1 +1 = 0 ; store: -2
          bool is_store = false;
          switch (in.op) {
            case Op::kI32Store: case Op::kI64Store: case Op::kF32Store:
            case Op::kF64Store: case Op::kI32Store8: case Op::kI32Store16:
            case Op::kI64Store8: case Op::kI64Store16: case Op::kI64Store32:
            case Op::kV128Store:
              is_store = true;
              break;
            default:
              break;
          }
          if (is_store) bump(-2);
        } else if (wasm::op_imm_kind(in.op) == ImmKind::kLaneIdx) {
          // extract_lane: -1 +1; replace_lane additionally pops the scalar.
          switch (in.op) {
            case Op::kI8x16ReplaceLane: case Op::kI16x8ReplaceLane:
            case Op::kI32x4ReplaceLane: case Op::kI64x2ReplaceLane:
            case Op::kF32x4ReplaceLane: case Op::kF64x2ReplaceLane:
              bump(-1);
              break;
            default:
              break;
          }
        } else if (in.op == Op::kV128Bitselect) {
          bump(-2);
        } else {
          // unop: 0 ; binop: -1. Reuse the lowering's classification.
          switch (in.op) {
            case Op::kI32Eqz: case Op::kI64Eqz:
            case Op::kI32Clz: case Op::kI32Ctz: case Op::kI32Popcnt:
            case Op::kI64Clz: case Op::kI64Ctz: case Op::kI64Popcnt:
            case Op::kF32Abs: case Op::kF32Neg: case Op::kF32Ceil:
            case Op::kF32Floor: case Op::kF32Trunc: case Op::kF32Nearest:
            case Op::kF32Sqrt:
            case Op::kF64Abs: case Op::kF64Neg: case Op::kF64Ceil:
            case Op::kF64Floor: case Op::kF64Trunc: case Op::kF64Nearest:
            case Op::kF64Sqrt:
            case Op::kI32WrapI64: case Op::kI32TruncF32S: case Op::kI32TruncF32U:
            case Op::kI32TruncF64S: case Op::kI32TruncF64U:
            case Op::kI64ExtendI32S: case Op::kI64ExtendI32U:
            case Op::kI64TruncF32S: case Op::kI64TruncF32U:
            case Op::kI64TruncF64S: case Op::kI64TruncF64U:
            case Op::kF32ConvertI32S: case Op::kF32ConvertI32U:
            case Op::kF32ConvertI64S: case Op::kF32ConvertI64U:
            case Op::kF32DemoteF64:
            case Op::kF64ConvertI32S: case Op::kF64ConvertI32U:
            case Op::kF64ConvertI64S: case Op::kF64ConvertI64U:
            case Op::kF64PromoteF32:
            case Op::kI32ReinterpretF32: case Op::kI64ReinterpretF64:
            case Op::kF32ReinterpretI32: case Op::kF64ReinterpretI64:
            case Op::kI32Extend8S: case Op::kI32Extend16S:
            case Op::kI64Extend8S: case Op::kI64Extend16S: case Op::kI64Extend32S:
            case Op::kI8x16Splat: case Op::kI16x8Splat: case Op::kI32x4Splat:
            case Op::kI64x2Splat: case Op::kF32x4Splat: case Op::kF64x2Splat:
            case Op::kV128Not: case Op::kV128AnyTrue:
            case Op::kI8x16Abs: case Op::kI8x16Neg: case Op::kI8x16AllTrue:
            case Op::kI16x8Abs: case Op::kI16x8Neg: case Op::kI16x8AllTrue:
            case Op::kI32x4Abs: case Op::kI32x4Neg: case Op::kI32x4AllTrue:
            case Op::kI64x2Abs: case Op::kI64x2Neg: case Op::kI64x2AllTrue:
            case Op::kF32x4Abs: case Op::kF32x4Neg: case Op::kF32x4Sqrt:
            case Op::kF64x2Abs: case Op::kF64x2Neg: case Op::kF64x2Sqrt:
              break;  // unop, net 0
            default:
              bump(-1);  // binop
              break;
          }
        }
        break;
      }
    }
  }
  MW_CHECK(frames.empty(), "predecode: unbalanced frames");
  out.max_stack = max_h + 1;
  return out;
}

PreModule predecode_module(const wasm::Module& m) {
  PreModule pm;
  pm.funcs.reserve(m.bodies.size());
  for (u32 i = 0; i < m.bodies.size(); ++i)
    pm.funcs.push_back(predecode_function(m, i));
  return pm;
}

void interp_exec(Instance& inst, const PreFunc& f, Slot* frame) {
  LinearMemory& mem = inst.memory();
  Slot* locals = frame;
  Slot* stack = frame + f.num_locals;
  u32 sp = 0;  // operand stack height
  size_t i = 0;
  const size_t nend = f.code.size() - 1;  // function-level End index

  auto push_slot = [&](Slot s) { stack[sp++] = s; };
  auto pop_slot = [&]() -> Slot { return stack[--sp]; };
  auto branch_to = [&](const PreBr& br) {
    // Carry `results` top values, truncate to label height, push them back.
    if (br.results == 1) {
      Slot v = stack[sp - 1];
      sp = br.height;
      stack[sp++] = v;
    } else {
      sp = br.height;
    }
    i = br.target;
  };

#define PUSH_I32(v) do { stack[sp++].u32v = u32(v); } while (0)
#define PUSH_I64(v) do { stack[sp++].u64v = u64(v); } while (0)
#define PUSH_F32(v) do { stack[sp++].f32v = (v); } while (0)
#define PUSH_F64(v) do { stack[sp++].f64v = (v); } while (0)
#define TOP stack[sp - 1]
#define NXT stack[sp - 2]
#define IBIN(field, expr)                        \
  {                                              \
    auto y = TOP.field;                          \
    auto x = NXT.field;                          \
    --sp;                                        \
    TOP.field = decltype(TOP.field)(expr);       \
  }                                              \
  break
#define ICMP(field, expr)                        \
  {                                              \
    auto y = TOP.field;                          \
    auto x = NXT.field;                          \
    --sp;                                        \
    TOP.u32v = (expr) ? 1u : 0u;                 \
  }                                              \
  break
#define IUN(dfield, sfield, expr)                \
  {                                              \
    auto x = TOP.sfield;                         \
    (void)x;                                     \
    TOP.dfield = (expr);                         \
  }                                              \
  break
#define ILOAD(dfield, T)                                              \
  TOP.dfield = decltype(TOP.dfield)(mem.load<T>(u64(TOP.u32v) + in.mem_offset)); \
  break
#define ISTORE(T, sfield)                                        \
  {                                                              \
    auto v = TOP.sfield;                                         \
    u32 addr = NXT.u32v;                                         \
    sp -= 2;                                                     \
    mem.store<T>(u64(addr) + in.mem_offset, T(v));               \
  }                                                              \
  break
#define IVBIN(T, N, expr)                                                     \
  {                                                                           \
    V128 y = TOP.v128v;                                                       \
    V128 x = NXT.v128v;                                                       \
    --sp;                                                                     \
    TOP.v128v =                                                               \
        v128_binop<T, N>(x, y, [](T xx, T yy) { (void)xx; (void)yy;           \
                                                return (expr); });            \
  }                                                                           \
  break
#define IVUN(T, N, expr)                                                      \
  TOP.v128v = v128_unop<T, N>(TOP.v128v,                                      \
                              [](T xx) { (void)xx; return (expr); });         \
  break
#define IVCMP(T, N, expr)                                                     \
  {                                                                           \
    V128 y = TOP.v128v;                                                       \
    V128 x = NXT.v128v;                                                       \
    --sp;                                                                     \
    TOP.v128v =                                                               \
        v128_cmp<T, N>(x, y, [](T xx, T yy) { (void)xx; (void)yy;             \
                                              return (expr); });              \
  }                                                                           \
  break
#define IVREPLACE(T, N, sfield)                                               \
  {                                                                           \
    auto v = TOP.sfield;                                                      \
    --sp;                                                                     \
    TOP.v128v.set_lane<T, N>(int(in.imm_i), T(v));                            \
  }                                                                           \
  break
#define IALOAD(dfield, T)                                                     \
  TOP.dfield =                                                                \
      decltype(TOP.dfield)(mem.atomic_load<T>(u64(TOP.u32v) + in.mem_offset)); \
  break
#define IASTORE(T, sfield)                                                    \
  {                                                                           \
    auto v = TOP.sfield;                                                      \
    u32 addr = NXT.u32v;                                                      \
    sp -= 2;                                                                  \
    mem.atomic_store<T>(u64(addr) + in.mem_offset, T(v));                     \
  }                                                                           \
  break
#define IARMW(fn, dfield, T, sfield)                                          \
  {                                                                           \
    auto v = TOP.sfield;                                                      \
    --sp;                                                                     \
    TOP.dfield =                                                              \
        decltype(TOP.dfield)(mem.fn<T>(u64(TOP.u32v) + in.mem_offset, T(v))); \
  }                                                                           \
  break
#define IACMPXCHG(dfield, T, sfield)                                          \
  {                                                                           \
    auto repl = TOP.sfield;                                                   \
    auto expd = NXT.sfield;                                                   \
    sp -= 2;                                                                  \
    TOP.dfield = decltype(TOP.dfield)(mem.atomic_rmw_cmpxchg<T>(              \
        u64(TOP.u32v) + in.mem_offset, T(expd), T(repl)));                    \
  }                                                                           \
  break

  for (;;) {
    const InstrView& in = f.code[i];
    switch (in.op) {
      case Op::kNop: case Op::kBlock: case Op::kLoop:
        break;
      case Op::kUnreachable:
        throw Trap(TrapKind::kUnreachable, "unreachable executed");
      case Op::kIf: {
        u32 cond = pop_slot().u32v;
        if (cond == 0) {
          i = f.br[i].target;
          continue;
        }
        break;
      }
      case Op::kElse:
        branch_to(f.br[i]);
        continue;
      case Op::kEnd:
        if (i == nend) {
          if (f.has_result) frame[0] = stack[sp - 1];
          return;
        }
        break;
      case Op::kBr:
        branch_to(f.br[i]);
        continue;
      case Op::kBrIf: {
        u32 cond = pop_slot().u32v;
        if (cond != 0) {
          branch_to(f.br[i]);
          continue;
        }
        break;
      }
      case Op::kBrTable: {
        u32 idx = pop_slot().u32v;
        const auto& table = f.tables[f.br[i].table];
        const PreBr& target =
            table[idx < table.size() - 1 ? idx : u32(table.size() - 1)];
        branch_to(target);
        continue;
      }
      case Op::kReturn:
        if (f.has_result) frame[0] = stack[sp - 1];
        return;
      case Op::kCall: {
        u32 nargs = in.mem_align;
        sp -= nargs;
        inst.call_function(in.idx(), &stack[sp]);
        sp += in.mem_offset;  // 1 if the callee returns a value
        break;
      }
      case Op::kCallIndirect: {
        u32 nargs = in.mem_align;
        u32 idx = pop_slot().u32v;
        sp -= nargs;
        const auto& tbl = inst.table();
        if (idx >= tbl.size() || tbl[idx] == UINT32_MAX)
          throw Trap(TrapKind::kUndefinedTableElement,
                     "table index " + std::to_string(idx));
        u32 fidx = tbl[idx];
        const CompiledModule& cm = inst.compiled();
        if (cm.func_canon[fidx] != cm.canon_type_ids[in.indirect_type_index])
          throw Trap(TrapKind::kIndirectCallTypeMismatch,
                     "signature mismatch at table index " + std::to_string(idx));
        inst.call_function(fidx, &stack[sp]);
        sp += in.mem_offset;
        break;
      }
      case Op::kDrop: --sp; break;
      case Op::kSelect: {
        u32 cond = pop_slot().u32v;
        Slot v2 = pop_slot();
        if (cond == 0) TOP = v2;
        break;
      }
      case Op::kLocalGet: push_slot(locals[in.idx()]); break;
      case Op::kLocalSet: locals[in.idx()] = pop_slot(); break;
      case Op::kLocalTee: locals[in.idx()] = TOP; break;
      case Op::kGlobalGet: push_slot(inst.globals()[in.idx()]); break;
      case Op::kGlobalSet: inst.globals()[in.idx()] = pop_slot(); break;

      case Op::kI32Load: ILOAD(u32v, u32);
      case Op::kI64Load: ILOAD(u64v, u64);
      case Op::kF32Load: ILOAD(f32v, f32);
      case Op::kF64Load: ILOAD(f64v, f64);
      case Op::kI32Load8S: ILOAD(i32v, i8);
      case Op::kI32Load8U: ILOAD(u32v, u8);
      case Op::kI32Load16S: ILOAD(i32v, i16);
      case Op::kI32Load16U: ILOAD(u32v, u16);
      case Op::kI64Load8S: ILOAD(i64v, i8);
      case Op::kI64Load8U: ILOAD(u64v, u8);
      case Op::kI64Load16S: ILOAD(i64v, i16);
      case Op::kI64Load16U: ILOAD(u64v, u16);
      case Op::kI64Load32S: ILOAD(i64v, i32);
      case Op::kI64Load32U: ILOAD(u64v, u32);
      case Op::kV128Load: ILOAD(v128v, V128);
      case Op::kV128Load32Splat:
        TOP.v128v = V128::splat<u32>(mem.load<u32>(u64(TOP.u32v) + in.mem_offset));
        break;
      case Op::kV128Load64Splat:
        TOP.v128v = V128::splat<u64>(mem.load<u64>(u64(TOP.u32v) + in.mem_offset));
        break;
      case Op::kI32Store: ISTORE(u32, u32v);
      case Op::kI64Store: ISTORE(u64, u64v);
      case Op::kF32Store: ISTORE(f32, f32v);
      case Op::kF64Store: ISTORE(f64, f64v);
      case Op::kI32Store8: ISTORE(u8, u32v);
      case Op::kI32Store16: ISTORE(u16, u32v);
      case Op::kI64Store8: ISTORE(u8, u64v);
      case Op::kI64Store16: ISTORE(u16, u64v);
      case Op::kI64Store32: ISTORE(u32, u64v);
      case Op::kV128Store: {
        V128 v = TOP.v128v;
        u32 addr = NXT.u32v;
        sp -= 2;
        mem.store<V128>(u64(addr) + in.mem_offset, v);
        break;
      }
      case Op::kMemorySize: PUSH_I32(mem.pages()); break;
      case Op::kMemoryGrow: TOP.i32v = mem.grow(TOP.u32v); break;
      case Op::kMemoryCopy: {
        u64 cnt = pop_slot().u32v, s = pop_slot().u32v, d = pop_slot().u32v;
        mem.check(d, cnt);
        mem.check(s, cnt);
        std::memmove(mem.base() + d, mem.base() + s, size_t(cnt));
        break;
      }
      case Op::kMemoryFill: {
        u64 cnt = pop_slot().u32v, v = pop_slot().u32v, d = pop_slot().u32v;
        mem.check(d, cnt);
        std::memset(mem.base() + d, int(v & 0xFF), size_t(cnt));
        break;
      }
      case Op::kI32Const: PUSH_I32(u32(i32(in.imm_i))); break;
      case Op::kI64Const: PUSH_I64(in.imm_i); break;
      case Op::kF32Const: PUSH_F32(in.imm_f32); break;
      case Op::kF64Const: PUSH_F64(in.imm_f64); break;
      case Op::kV128Const: stack[sp++].v128v = in.imm_v128; break;

      case Op::kI32Eqz: IUN(u32v, u32v, x == 0 ? 1u : 0u);
      case Op::kI32Eq: ICMP(i32v, x == y);
      case Op::kI32Ne: ICMP(i32v, x != y);
      case Op::kI32LtS: ICMP(i32v, x < y);
      case Op::kI32LtU: ICMP(u32v, x < y);
      case Op::kI32GtS: ICMP(i32v, x > y);
      case Op::kI32GtU: ICMP(u32v, x > y);
      case Op::kI32LeS: ICMP(i32v, x <= y);
      case Op::kI32LeU: ICMP(u32v, x <= y);
      case Op::kI32GeS: ICMP(i32v, x >= y);
      case Op::kI32GeU: ICMP(u32v, x >= y);
      case Op::kI64Eqz: IUN(u32v, u64v, x == 0 ? 1u : 0u);
      case Op::kI64Eq: ICMP(i64v, x == y);
      case Op::kI64Ne: ICMP(i64v, x != y);
      case Op::kI64LtS: ICMP(i64v, x < y);
      case Op::kI64LtU: ICMP(u64v, x < y);
      case Op::kI64GtS: ICMP(i64v, x > y);
      case Op::kI64GtU: ICMP(u64v, x > y);
      case Op::kI64LeS: ICMP(i64v, x <= y);
      case Op::kI64LeU: ICMP(u64v, x <= y);
      case Op::kI64GeS: ICMP(i64v, x >= y);
      case Op::kI64GeU: ICMP(u64v, x >= y);
      case Op::kF32Eq: ICMP(f32v, x == y);
      case Op::kF32Ne: ICMP(f32v, x != y);
      case Op::kF32Lt: ICMP(f32v, x < y);
      case Op::kF32Gt: ICMP(f32v, x > y);
      case Op::kF32Le: ICMP(f32v, x <= y);
      case Op::kF32Ge: ICMP(f32v, x >= y);
      case Op::kF64Eq: ICMP(f64v, x == y);
      case Op::kF64Ne: ICMP(f64v, x != y);
      case Op::kF64Lt: ICMP(f64v, x < y);
      case Op::kF64Gt: ICMP(f64v, x > y);
      case Op::kF64Le: ICMP(f64v, x <= y);
      case Op::kF64Ge: ICMP(f64v, x >= y);

      case Op::kI32Clz: IUN(u32v, u32v, u32(std::countl_zero(x)));
      case Op::kI32Ctz: IUN(u32v, u32v, u32(std::countr_zero(x)));
      case Op::kI32Popcnt: IUN(u32v, u32v, u32(std::popcount(x)));
      case Op::kI32Add: IBIN(u32v, x + y);
      case Op::kI32Sub: IBIN(u32v, x - y);
      case Op::kI32Mul: IBIN(u32v, x * y);
      case Op::kI32DivS: IBIN(i32v, i32_div_s(x, y));
      case Op::kI32DivU: IBIN(u32v, i32_div_u(x, y));
      case Op::kI32RemS: IBIN(i32v, i32_rem_s(x, y));
      case Op::kI32RemU: IBIN(u32v, i32_rem_u(x, y));
      case Op::kI32And: IBIN(u32v, x & y);
      case Op::kI32Or: IBIN(u32v, x | y);
      case Op::kI32Xor: IBIN(u32v, x ^ y);
      case Op::kI32Shl: IBIN(u32v, i32_shl(x, y));
      case Op::kI32ShrS: IBIN(i32v, i32_shr_s(x, u32(y)));
      case Op::kI32ShrU: IBIN(u32v, i32_shr_u(x, y));
      case Op::kI32Rotl: IBIN(u32v, i32_rotl(x, y));
      case Op::kI32Rotr: IBIN(u32v, i32_rotr(x, y));
      case Op::kI64Clz: IUN(u64v, u64v, u64(std::countl_zero(x)));
      case Op::kI64Ctz: IUN(u64v, u64v, u64(std::countr_zero(x)));
      case Op::kI64Popcnt: IUN(u64v, u64v, u64(std::popcount(x)));
      case Op::kI64Add: IBIN(u64v, x + y);
      case Op::kI64Sub: IBIN(u64v, x - y);
      case Op::kI64Mul: IBIN(u64v, x * y);
      case Op::kI64DivS: IBIN(i64v, i64_div_s(x, y));
      case Op::kI64DivU: IBIN(u64v, i64_div_u(x, y));
      case Op::kI64RemS: IBIN(i64v, i64_rem_s(x, y));
      case Op::kI64RemU: IBIN(u64v, i64_rem_u(x, y));
      case Op::kI64And: IBIN(u64v, x & y);
      case Op::kI64Or: IBIN(u64v, x | y);
      case Op::kI64Xor: IBIN(u64v, x ^ y);
      case Op::kI64Shl: IBIN(u64v, i64_shl(x, y));
      case Op::kI64ShrS: IBIN(i64v, i64_shr_s(x, u64(y)));
      case Op::kI64ShrU: IBIN(u64v, i64_shr_u(x, y));
      case Op::kI64Rotl: IBIN(u64v, i64_rotl(x, y));
      case Op::kI64Rotr: IBIN(u64v, i64_rotr(x, y));

      case Op::kF32Abs: IUN(f32v, f32v, std::fabs(x));
      case Op::kF32Neg: IUN(f32v, f32v, -x);
      case Op::kF32Ceil: IUN(f32v, f32v, std::ceil(x));
      case Op::kF32Floor: IUN(f32v, f32v, std::floor(x));
      case Op::kF32Trunc: IUN(f32v, f32v, std::trunc(x));
      case Op::kF32Nearest: IUN(f32v, f32v, fnearest(x));
      case Op::kF32Sqrt: IUN(f32v, f32v, std::sqrt(x));
      case Op::kF32Add: IBIN(f32v, x + y);
      case Op::kF32Sub: IBIN(f32v, x - y);
      case Op::kF32Mul: IBIN(f32v, x * y);
      case Op::kF32Div: IBIN(f32v, x / y);
      case Op::kF32Min: IBIN(f32v, fmin_wasm(x, y));
      case Op::kF32Max: IBIN(f32v, fmax_wasm(x, y));
      case Op::kF32Copysign: IBIN(f32v, std::copysign(x, y));
      case Op::kF64Abs: IUN(f64v, f64v, std::fabs(x));
      case Op::kF64Neg: IUN(f64v, f64v, -x);
      case Op::kF64Ceil: IUN(f64v, f64v, std::ceil(x));
      case Op::kF64Floor: IUN(f64v, f64v, std::floor(x));
      case Op::kF64Trunc: IUN(f64v, f64v, std::trunc(x));
      case Op::kF64Nearest: IUN(f64v, f64v, fnearest(x));
      case Op::kF64Sqrt: IUN(f64v, f64v, std::sqrt(x));
      case Op::kF64Add: IBIN(f64v, x + y);
      case Op::kF64Sub: IBIN(f64v, x - y);
      case Op::kF64Mul: IBIN(f64v, x * y);
      case Op::kF64Div: IBIN(f64v, x / y);
      case Op::kF64Min: IBIN(f64v, fmin_wasm(x, y));
      case Op::kF64Max: IBIN(f64v, fmax_wasm(x, y));
      case Op::kF64Copysign: IBIN(f64v, std::copysign(x, y));

      case Op::kI32WrapI64: IUN(u32v, u64v, u32(x));
      case Op::kI32TruncF32S: IUN(i32v, f32v, (trunc_checked<i32>(x, "i32.trunc_f32_s")));
      case Op::kI32TruncF32U: IUN(u32v, f32v, (trunc_checked<u32>(x, "i32.trunc_f32_u")));
      case Op::kI32TruncF64S: IUN(i32v, f64v, (trunc_checked<i32>(x, "i32.trunc_f64_s")));
      case Op::kI32TruncF64U: IUN(u32v, f64v, (trunc_checked<u32>(x, "i32.trunc_f64_u")));
      case Op::kI64ExtendI32S: IUN(i64v, i32v, i64(x));
      case Op::kI64ExtendI32U: IUN(u64v, u32v, u64(x));
      case Op::kI64TruncF32S: IUN(i64v, f32v, (trunc_checked<i64>(x, "i64.trunc_f32_s")));
      case Op::kI64TruncF32U: IUN(u64v, f32v, (trunc_checked<u64>(x, "i64.trunc_f32_u")));
      case Op::kI64TruncF64S: IUN(i64v, f64v, (trunc_checked<i64>(x, "i64.trunc_f64_s")));
      case Op::kI64TruncF64U: IUN(u64v, f64v, (trunc_checked<u64>(x, "i64.trunc_f64_u")));
      case Op::kF32ConvertI32S: IUN(f32v, i32v, f32(x));
      case Op::kF32ConvertI32U: IUN(f32v, u32v, f32(x));
      case Op::kF32ConvertI64S: IUN(f32v, i64v, f32(x));
      case Op::kF32ConvertI64U: IUN(f32v, u64v, f32(x));
      case Op::kF32DemoteF64: IUN(f32v, f64v, f32(x));
      case Op::kF64ConvertI32S: IUN(f64v, i32v, f64(x));
      case Op::kF64ConvertI32U: IUN(f64v, u32v, f64(x));
      case Op::kF64ConvertI64S: IUN(f64v, i64v, f64(x));
      case Op::kF64ConvertI64U: IUN(f64v, u64v, f64(x));
      case Op::kF64PromoteF32: IUN(f64v, f32v, f64(x));
      case Op::kI32ReinterpretF32:
      case Op::kI64ReinterpretF64:
      case Op::kF32ReinterpretI32:
      case Op::kF64ReinterpretI64:
        break;  // same bits, different typed view
      case Op::kI32Extend8S: IUN(i32v, i32v, i32(i8(x)));
      case Op::kI32Extend16S: IUN(i32v, i32v, i32(i16(x)));
      case Op::kI64Extend8S: IUN(i64v, i64v, i64(i8(x)));
      case Op::kI64Extend16S: IUN(i64v, i64v, i64(i16(x)));
      case Op::kI64Extend32S: IUN(i64v, i64v, i64(i32(x)));

      case Op::kI8x16Splat: TOP.v128v = V128::splat<u8>(u8(TOP.u32v)); break;
      case Op::kI16x8Splat: TOP.v128v = V128::splat<u16>(u16(TOP.u32v)); break;
      case Op::kI32x4Splat: TOP.v128v = V128::splat<u32>(TOP.u32v); break;
      case Op::kI64x2Splat: TOP.v128v = V128::splat<u64>(TOP.u64v); break;
      case Op::kF32x4Splat: TOP.v128v = V128::splat<f32>(TOP.f32v); break;
      case Op::kF64x2Splat: TOP.v128v = V128::splat<f64>(TOP.f64v); break;
      case Op::kI8x16ExtractLaneS:
        TOP.i32v = i32(i8(TOP.v128v.lane<u8, 16>(int(in.imm_i))));
        break;
      case Op::kI8x16ExtractLaneU:
        TOP.u32v = u32(TOP.v128v.lane<u8, 16>(int(in.imm_i)));
        break;
      case Op::kI16x8ExtractLaneS:
        TOP.i32v = i32(i16(TOP.v128v.lane<u16, 8>(int(in.imm_i))));
        break;
      case Op::kI16x8ExtractLaneU:
        TOP.u32v = u32(TOP.v128v.lane<u16, 8>(int(in.imm_i)));
        break;
      case Op::kI32x4ExtractLane: TOP.u32v = TOP.v128v.lane<u32, 4>(int(in.imm_i)); break;
      case Op::kI64x2ExtractLane: TOP.u64v = TOP.v128v.lane<u64, 2>(int(in.imm_i)); break;
      case Op::kF32x4ExtractLane: TOP.f32v = TOP.v128v.lane<f32, 4>(int(in.imm_i)); break;
      case Op::kF64x2ExtractLane: TOP.f64v = TOP.v128v.lane<f64, 2>(int(in.imm_i)); break;
      case Op::kI8x16ReplaceLane: IVREPLACE(u8, 16, u32v);
      case Op::kI16x8ReplaceLane: IVREPLACE(u16, 8, u32v);
      case Op::kI32x4ReplaceLane: IVREPLACE(u32, 4, u32v);
      case Op::kI64x2ReplaceLane: IVREPLACE(u64, 2, u64v);
      case Op::kF32x4ReplaceLane: IVREPLACE(f32, 4, f32v);
      case Op::kF64x2ReplaceLane: IVREPLACE(f64, 2, f64v);
      case Op::kI8x16Shuffle: {
        V128 y = pop_slot().v128v;
        TOP.v128v = i8x16_shuffle(TOP.v128v, y, in.imm_v128);
        break;
      }
      case Op::kI8x16Swizzle: {
        V128 y = pop_slot().v128v;
        TOP.v128v = i8x16_swizzle(TOP.v128v, y);
        break;
      }
      case Op::kI8x16Eq: {
        V128 y = pop_slot().v128v;
        TOP.v128v = i8x16_eq(TOP.v128v, y);
        break;
      }
      case Op::kI8x16Ne: IVCMP(u8, 16, xx != yy);
      case Op::kI8x16LtS: IVCMP(i8, 16, xx < yy);
      case Op::kI8x16LtU: IVCMP(u8, 16, xx < yy);
      case Op::kI8x16GtS: IVCMP(i8, 16, xx > yy);
      case Op::kI8x16GtU: IVCMP(u8, 16, xx > yy);
      case Op::kI8x16LeS: IVCMP(i8, 16, xx <= yy);
      case Op::kI8x16LeU: IVCMP(u8, 16, xx <= yy);
      case Op::kI8x16GeS: IVCMP(i8, 16, xx >= yy);
      case Op::kI8x16GeU: IVCMP(u8, 16, xx >= yy);
      case Op::kI16x8Eq: IVCMP(u16, 8, xx == yy);
      case Op::kI16x8Ne: IVCMP(u16, 8, xx != yy);
      case Op::kI16x8LtS: IVCMP(i16, 8, xx < yy);
      case Op::kI16x8LtU: IVCMP(u16, 8, xx < yy);
      case Op::kI16x8GtS: IVCMP(i16, 8, xx > yy);
      case Op::kI16x8GtU: IVCMP(u16, 8, xx > yy);
      case Op::kI16x8LeS: IVCMP(i16, 8, xx <= yy);
      case Op::kI16x8LeU: IVCMP(u16, 8, xx <= yy);
      case Op::kI16x8GeS: IVCMP(i16, 8, xx >= yy);
      case Op::kI16x8GeU: IVCMP(u16, 8, xx >= yy);
      case Op::kI32x4Eq: IVCMP(u32, 4, xx == yy);
      case Op::kI32x4Ne: IVCMP(u32, 4, xx != yy);
      case Op::kI32x4LtS: IVCMP(i32, 4, xx < yy);
      case Op::kI32x4LtU: IVCMP(u32, 4, xx < yy);
      case Op::kI32x4GtS: IVCMP(i32, 4, xx > yy);
      case Op::kI32x4GtU: IVCMP(u32, 4, xx > yy);
      case Op::kI32x4LeS: IVCMP(i32, 4, xx <= yy);
      case Op::kI32x4LeU: IVCMP(u32, 4, xx <= yy);
      case Op::kI32x4GeS: IVCMP(i32, 4, xx >= yy);
      case Op::kI32x4GeU: IVCMP(u32, 4, xx >= yy);
      case Op::kF32x4Eq: IVCMP(f32, 4, xx == yy);
      case Op::kF32x4Ne: IVCMP(f32, 4, xx != yy);
      case Op::kF32x4Lt: IVCMP(f32, 4, xx < yy);
      case Op::kF32x4Gt: IVCMP(f32, 4, xx > yy);
      case Op::kF32x4Le: IVCMP(f32, 4, xx <= yy);
      case Op::kF32x4Ge: IVCMP(f32, 4, xx >= yy);
      case Op::kF64x2Eq: IVCMP(f64, 2, xx == yy);
      case Op::kF64x2Ne: IVCMP(f64, 2, xx != yy);
      case Op::kF64x2Lt: IVCMP(f64, 2, xx < yy);
      case Op::kF64x2Gt: IVCMP(f64, 2, xx > yy);
      case Op::kF64x2Le: IVCMP(f64, 2, xx <= yy);
      case Op::kF64x2Ge: IVCMP(f64, 2, xx >= yy);
      case Op::kV128Not: TOP.v128v = v128_not(TOP.v128v); break;
      case Op::kV128And: {
        V128 y = pop_slot().v128v;
        TOP.v128v = v128_bitop_and(TOP.v128v, y);
        break;
      }
      case Op::kV128AndNot: {
        V128 y = pop_slot().v128v;
        TOP.v128v = v128_bitop_andnot(TOP.v128v, y);
        break;
      }
      case Op::kV128Or: {
        V128 y = pop_slot().v128v;
        TOP.v128v = v128_bitop_or(TOP.v128v, y);
        break;
      }
      case Op::kV128Xor: {
        V128 y = pop_slot().v128v;
        TOP.v128v = v128_bitop_xor(TOP.v128v, y);
        break;
      }
      case Op::kV128Bitselect: {
        V128 mask = pop_slot().v128v;
        V128 v2 = pop_slot().v128v;
        TOP.v128v = v128_bitselect(TOP.v128v, v2, mask);
        break;
      }
      case Op::kV128AnyTrue: TOP.u32v = u32(v128_any_true(TOP.v128v)); break;
      case Op::kI8x16Abs: IVUN(i8, 16, lane_iabs(xx));
      case Op::kI8x16Neg: IVUN(u8, 16, u8(0u - xx));
      case Op::kI8x16AllTrue:
        TOP.u32v = u32(v128_all_true<u8, 16>(TOP.v128v));
        break;
      case Op::kI8x16Add: IVBIN(u8, 16, u8(xx + yy));
      case Op::kI8x16Sub: IVBIN(u8, 16, u8(xx - yy));
      case Op::kI16x8Abs: IVUN(i16, 8, lane_iabs(xx));
      case Op::kI16x8Neg: IVUN(u16, 8, u16(0u - xx));
      case Op::kI16x8AllTrue:
        TOP.u32v = u32(v128_all_true<u16, 8>(TOP.v128v));
        break;
      case Op::kI16x8Add: IVBIN(u16, 8, u16(xx + yy));
      case Op::kI16x8Sub: IVBIN(u16, 8, u16(xx - yy));
      case Op::kI16x8Mul: IVBIN(u16, 8, u16(xx * yy));
      case Op::kI32x4Abs: IVUN(i32, 4, lane_iabs(xx));
      case Op::kI32x4Neg: IVUN(u32, 4, 0u - xx);
      case Op::kI32x4AllTrue:
        TOP.u32v = u32(v128_all_true<u32, 4>(TOP.v128v));
        break;
      case Op::kI32x4Shl: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shl<u32, 4>(TOP.v128v, k);
        break;
      }
      case Op::kI32x4ShrS: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shr<i32, 4>(TOP.v128v, k);
        break;
      }
      case Op::kI32x4ShrU: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shr<u32, 4>(TOP.v128v, k);
        break;
      }
      case Op::kI32x4Add: IVBIN(u32, 4, xx + yy);
      case Op::kI32x4Sub: IVBIN(u32, 4, xx - yy);
      case Op::kI32x4Mul: IVBIN(u32, 4, xx * yy);
      case Op::kI32x4MinS: IVBIN(i32, 4, xx < yy ? xx : yy);
      case Op::kI32x4MinU: IVBIN(u32, 4, xx < yy ? xx : yy);
      case Op::kI32x4MaxS: IVBIN(i32, 4, xx > yy ? xx : yy);
      case Op::kI32x4MaxU: IVBIN(u32, 4, xx > yy ? xx : yy);
      case Op::kI64x2Abs: IVUN(i64, 2, lane_iabs(xx));
      case Op::kI64x2Neg: IVUN(u64, 2, u64(0) - xx);
      case Op::kI64x2AllTrue:
        TOP.u32v = u32(v128_all_true<u64, 2>(TOP.v128v));
        break;
      case Op::kI64x2Shl: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shl<u64, 2>(TOP.v128v, k);
        break;
      }
      case Op::kI64x2ShrS: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shr<i64, 2>(TOP.v128v, k);
        break;
      }
      case Op::kI64x2ShrU: {
        u32 k = pop_slot().u32v;
        TOP.v128v = v128_shr<u64, 2>(TOP.v128v, k);
        break;
      }
      case Op::kI64x2Add: IVBIN(u64, 2, xx + yy);
      case Op::kI64x2Sub: IVBIN(u64, 2, xx - yy);
      case Op::kI64x2Mul: IVBIN(u64, 2, xx * yy);
      case Op::kF32x4Abs: IVUN(f32, 4, std::fabs(xx));
      case Op::kF32x4Neg: IVUN(f32, 4, -xx);
      case Op::kF32x4Sqrt: IVUN(f32, 4, std::sqrt(xx));
      case Op::kF32x4Add: IVBIN(f32, 4, xx + yy);
      case Op::kF32x4Sub: IVBIN(f32, 4, xx - yy);
      case Op::kF32x4Mul: IVBIN(f32, 4, xx * yy);
      case Op::kF32x4Div: IVBIN(f32, 4, xx / yy);
      case Op::kF32x4Min: IVBIN(f32, 4, fmin_wasm(xx, yy));
      case Op::kF32x4Max: IVBIN(f32, 4, fmax_wasm(xx, yy));
      case Op::kF32x4Pmin: IVBIN(f32, 4, lane_pmin(xx, yy));
      case Op::kF32x4Pmax: IVBIN(f32, 4, lane_pmax(xx, yy));
      case Op::kF64x2Abs: IVUN(f64, 2, std::fabs(xx));
      case Op::kF64x2Neg: IVUN(f64, 2, -xx);
      case Op::kF64x2Sqrt: IVUN(f64, 2, std::sqrt(xx));
      case Op::kF64x2Add: IVBIN(f64, 2, xx + yy);
      case Op::kF64x2Sub: IVBIN(f64, 2, xx - yy);
      case Op::kF64x2Mul: IVBIN(f64, 2, xx * yy);
      case Op::kF64x2Div: IVBIN(f64, 2, xx / yy);
      case Op::kF64x2Min: IVBIN(f64, 2, fmin_wasm(xx, yy));
      case Op::kF64x2Max: IVBIN(f64, 2, fmax_wasm(xx, yy));
      case Op::kF64x2Pmin: IVBIN(f64, 2, lane_pmin(xx, yy));
      case Op::kF64x2Pmax: IVBIN(f64, 2, lane_pmax(xx, yy));

      // --- 0xFE atomics (threads proposal) ------------------------------
      case Op::kMemoryAtomicNotify: {
        u32 count = pop_slot().u32v;
        TOP.u32v = mem.atomic_notify(u64(TOP.u32v) + in.mem_offset, count);
        break;
      }
      case Op::kMemoryAtomicWait32: {
        i64 timeout = pop_slot().i64v;
        u32 expected = pop_slot().u32v;
        TOP.u32v =
            mem.atomic_wait32(u64(TOP.u32v) + in.mem_offset, expected, timeout);
        break;
      }
      case Op::kMemoryAtomicWait64: {
        i64 timeout = pop_slot().i64v;
        u64 expected = pop_slot().u64v;
        TOP.u32v =
            mem.atomic_wait64(u64(TOP.u32v) + in.mem_offset, expected, timeout);
        break;
      }
      case Op::kAtomicFence:
        std::atomic_thread_fence(std::memory_order_seq_cst);
        break;
      case Op::kI32AtomicLoad: IALOAD(u32v, u32);
      case Op::kI64AtomicLoad: IALOAD(u64v, u64);
      case Op::kI32AtomicLoad8U: IALOAD(u32v, u8);
      case Op::kI32AtomicLoad16U: IALOAD(u32v, u16);
      case Op::kI64AtomicLoad8U: IALOAD(u64v, u8);
      case Op::kI64AtomicLoad16U: IALOAD(u64v, u16);
      case Op::kI64AtomicLoad32U: IALOAD(u64v, u32);
      case Op::kI32AtomicStore: IASTORE(u32, u32v);
      case Op::kI64AtomicStore: IASTORE(u64, u64v);
      case Op::kI32AtomicStore8: IASTORE(u8, u32v);
      case Op::kI32AtomicStore16: IASTORE(u16, u32v);
      case Op::kI64AtomicStore8: IASTORE(u8, u64v);
      case Op::kI64AtomicStore16: IASTORE(u16, u64v);
      case Op::kI64AtomicStore32: IASTORE(u32, u64v);
      case Op::kI32AtomicRmwAdd: IARMW(atomic_rmw_add, u32v, u32, u32v);
      case Op::kI64AtomicRmwAdd: IARMW(atomic_rmw_add, u64v, u64, u64v);
      case Op::kI32AtomicRmw8AddU: IARMW(atomic_rmw_add, u32v, u8, u32v);
      case Op::kI32AtomicRmw16AddU: IARMW(atomic_rmw_add, u32v, u16, u32v);
      case Op::kI64AtomicRmw8AddU: IARMW(atomic_rmw_add, u64v, u8, u64v);
      case Op::kI64AtomicRmw16AddU: IARMW(atomic_rmw_add, u64v, u16, u64v);
      case Op::kI64AtomicRmw32AddU: IARMW(atomic_rmw_add, u64v, u32, u64v);
      case Op::kI32AtomicRmwSub: IARMW(atomic_rmw_sub, u32v, u32, u32v);
      case Op::kI64AtomicRmwSub: IARMW(atomic_rmw_sub, u64v, u64, u64v);
      case Op::kI32AtomicRmw8SubU: IARMW(atomic_rmw_sub, u32v, u8, u32v);
      case Op::kI32AtomicRmw16SubU: IARMW(atomic_rmw_sub, u32v, u16, u32v);
      case Op::kI64AtomicRmw8SubU: IARMW(atomic_rmw_sub, u64v, u8, u64v);
      case Op::kI64AtomicRmw16SubU: IARMW(atomic_rmw_sub, u64v, u16, u64v);
      case Op::kI64AtomicRmw32SubU: IARMW(atomic_rmw_sub, u64v, u32, u64v);
      case Op::kI32AtomicRmwAnd: IARMW(atomic_rmw_and, u32v, u32, u32v);
      case Op::kI64AtomicRmwAnd: IARMW(atomic_rmw_and, u64v, u64, u64v);
      case Op::kI32AtomicRmw8AndU: IARMW(atomic_rmw_and, u32v, u8, u32v);
      case Op::kI32AtomicRmw16AndU: IARMW(atomic_rmw_and, u32v, u16, u32v);
      case Op::kI64AtomicRmw8AndU: IARMW(atomic_rmw_and, u64v, u8, u64v);
      case Op::kI64AtomicRmw16AndU: IARMW(atomic_rmw_and, u64v, u16, u64v);
      case Op::kI64AtomicRmw32AndU: IARMW(atomic_rmw_and, u64v, u32, u64v);
      case Op::kI32AtomicRmwOr: IARMW(atomic_rmw_or, u32v, u32, u32v);
      case Op::kI64AtomicRmwOr: IARMW(atomic_rmw_or, u64v, u64, u64v);
      case Op::kI32AtomicRmw8OrU: IARMW(atomic_rmw_or, u32v, u8, u32v);
      case Op::kI32AtomicRmw16OrU: IARMW(atomic_rmw_or, u32v, u16, u32v);
      case Op::kI64AtomicRmw8OrU: IARMW(atomic_rmw_or, u64v, u8, u64v);
      case Op::kI64AtomicRmw16OrU: IARMW(atomic_rmw_or, u64v, u16, u64v);
      case Op::kI64AtomicRmw32OrU: IARMW(atomic_rmw_or, u64v, u32, u64v);
      case Op::kI32AtomicRmwXor: IARMW(atomic_rmw_xor, u32v, u32, u32v);
      case Op::kI64AtomicRmwXor: IARMW(atomic_rmw_xor, u64v, u64, u64v);
      case Op::kI32AtomicRmw8XorU: IARMW(atomic_rmw_xor, u32v, u8, u32v);
      case Op::kI32AtomicRmw16XorU: IARMW(atomic_rmw_xor, u32v, u16, u32v);
      case Op::kI64AtomicRmw8XorU: IARMW(atomic_rmw_xor, u64v, u8, u64v);
      case Op::kI64AtomicRmw16XorU: IARMW(atomic_rmw_xor, u64v, u16, u64v);
      case Op::kI64AtomicRmw32XorU: IARMW(atomic_rmw_xor, u64v, u32, u64v);
      case Op::kI32AtomicRmwXchg: IARMW(atomic_rmw_xchg, u32v, u32, u32v);
      case Op::kI64AtomicRmwXchg: IARMW(atomic_rmw_xchg, u64v, u64, u64v);
      case Op::kI32AtomicRmw8XchgU: IARMW(atomic_rmw_xchg, u32v, u8, u32v);
      case Op::kI32AtomicRmw16XchgU: IARMW(atomic_rmw_xchg, u32v, u16, u32v);
      case Op::kI64AtomicRmw8XchgU: IARMW(atomic_rmw_xchg, u64v, u8, u64v);
      case Op::kI64AtomicRmw16XchgU: IARMW(atomic_rmw_xchg, u64v, u16, u64v);
      case Op::kI64AtomicRmw32XchgU: IARMW(atomic_rmw_xchg, u64v, u32, u64v);
      case Op::kI32AtomicRmwCmpxchg: IACMPXCHG(u32v, u32, u32v);
      case Op::kI64AtomicRmwCmpxchg: IACMPXCHG(u64v, u64, u64v);
      case Op::kI32AtomicRmw8CmpxchgU: IACMPXCHG(u32v, u8, u32v);
      case Op::kI32AtomicRmw16CmpxchgU: IACMPXCHG(u32v, u16, u32v);
      case Op::kI64AtomicRmw8CmpxchgU: IACMPXCHG(u64v, u8, u64v);
      case Op::kI64AtomicRmw16CmpxchgU: IACMPXCHG(u64v, u16, u64v);
      case Op::kI64AtomicRmw32CmpxchgU: IACMPXCHG(u64v, u32, u64v);
    }
    ++i;
  }

#undef PUSH_I32
#undef PUSH_I64
#undef PUSH_F32
#undef PUSH_F64
#undef TOP
#undef NXT
#undef IBIN
#undef ICMP
#undef IUN
#undef ILOAD
#undef ISTORE
#undef IVBIN
#undef IVUN
#undef IVCMP
#undef IVREPLACE
#undef IALOAD
#undef IASTORE
#undef IARMW
#undef IACMPXCHG
}

}  // namespace mpiwasm::rt
