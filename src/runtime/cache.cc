#include "runtime/cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/byte_buffer.h"
#include "support/log.h"

namespace mpiwasm::rt {

namespace fs = std::filesystem;

namespace {
constexpr u32 kCacheMagic = 0x4357524D;  // "MRWC"
// v3: per-function records (shared by whole-module entries and the tiered
// engine's per-function entries).
// v4: the superinstruction/hoisting opcode space (fused select/load-op/
// op-store/indexed forms, kMemGuard, raw ops).
// v5: the full SIMD opcode space (lane ops, comparisons, shifts, shuffle,
// bitselect, v128 fused/indexed/raw forms), which renumbers ROp again.
// v6: an optional per-function native-code section (JitBlob: CPU feature
// word, codegen layout hash, machine code, helper relocations). The section
// is validated separately at load time — the *engine* rejects a blob whose
// features aren't a subset of the host's or whose layout hash disagrees
// with this build, recompiles it, and falls back to threaded RegCode when
// that fails too; the RegCode part of the entry stays usable either way.
// Any older entry would decode to the wrong opcodes, so the header check
// rejects it and the engine silently recompiles. RFunc::handlers and
// RFunc::jit_entry are derived state and are never serialized;
// prepare_rfunc() / JitArena::install() re-resolve them after every load.
// v7: the threads/atomics opcode space (0xFE atomic loads/stores/rmw/
// cmpxchg, wait/notify, fence), which renumbers ROp and extends the JIT
// helper table; serialized RegCode and native blobs from v6 would decode
// to the wrong opcodes.
constexpr u32 kCacheVersion = 7;

void write_rfunc(ByteWriter& w, const RFunc& f) {
  w.write_leb_u32(f.num_params);
  w.write_leb_u32(f.num_locals);
  w.write_leb_u32(f.num_regs);
  w.write_u8(f.has_result ? 1 : 0);
  w.write_leb_u32(u32(f.code.size()));
  for (const RInstr& in : f.code) {
    w.write_u32_le(u32(in.op));
    w.write_u32_le(in.a);
    w.write_u32_le(in.b);
    w.write_u32_le(in.c);
    w.write_u32_le(in.d);
    w.write_u64_le(in.imm);
  }
  w.write_leb_u32(u32(f.v128_pool.size()));
  for (const auto& v : f.v128_pool) w.write_bytes({v.bytes, 16});
  w.write_leb_u32(u32(f.br_pool.size()));
  for (const auto& pool : f.br_pool) {
    w.write_leb_u32(u32(pool.size()));
    for (u32 t : pool) w.write_leb_u32(t);
  }
  // v6 native section (optional — absent for functions that were never
  // JIT-compiled or had an untemplatable op).
  if (f.jit != nullptr) {
    w.write_u8(1);
    w.write_u32_le(f.jit->cpu_features);
    w.write_u64_le(f.jit->layout_hash);
    w.write_leb_u32(u32(f.jit->code.size()));
    w.write_bytes({f.jit->code.data(), f.jit->code.size()});
    w.write_leb_u32(u32(f.jit->relocs.size()));
    for (const JitReloc& rel : f.jit->relocs) {
      w.write_u32_le(rel.offset);
      w.write_u32_le(rel.helper);
    }
  } else {
    w.write_u8(0);
  }
}

/// Reads one function record; false on a malformed record (the caller
/// treats the whole entry as corrupt).
bool read_rfunc(ByteReader& r, RFunc& f) {
  f.num_params = r.read_leb_u32();
  f.num_locals = r.read_leb_u32();
  f.num_regs = r.read_leb_u32();
  f.has_result = r.read_u8() != 0;
  u32 ninstr = r.read_leb_u32();
  if (u64(ninstr) * 28 > r.remaining()) return false;  // cheap size sanity
  f.code.resize(ninstr);
  for (RInstr& in : f.code) {
    u32 op = r.read_u32_le();
    if (op >= u32(ROp::kCount)) return false;
    in.op = ROp(op);
    in.a = r.read_u32_le();
    in.b = r.read_u32_le();
    in.c = r.read_u32_le();
    in.d = r.read_u32_le();
    in.imm = r.read_u64_le();
  }
  u32 nv = r.read_leb_u32();
  if (u64(nv) * 16 > r.remaining()) return false;
  f.v128_pool.resize(nv);
  for (auto& v : f.v128_pool) {
    auto b = r.read_bytes(16);
    std::memcpy(v.bytes, b.data(), 16);
  }
  u32 np = r.read_leb_u32();
  if (np > r.remaining()) return false;
  f.br_pool.resize(np);
  for (auto& pool : f.br_pool) {
    u32 n = r.read_leb_u32();
    if (n > r.remaining()) return false;
    pool.resize(n);
    for (u32& t : pool) t = r.read_leb_u32();
  }
  u8 has_native = r.read_u8();
  if (has_native > 1) return false;
  if (has_native != 0) {
    auto blob = std::make_shared<JitBlob>();
    blob->cpu_features = r.read_u32_le();
    blob->layout_hash = r.read_u64_le();
    u32 code_size = r.read_leb_u32();
    if (code_size > r.remaining()) return false;
    auto code = r.read_bytes(code_size);
    blob->code.assign(code.begin(), code.end());
    u32 nrel = r.read_leb_u32();
    if (u64(nrel) * 8 > r.remaining()) return false;
    blob->relocs.resize(nrel);
    for (JitReloc& rel : blob->relocs) {
      rel.offset = r.read_u32_le();
      rel.helper = r.read_u32_le();
      // Reloc sanity: each patch site must lie inside the code bytes (the
      // helper ordinal is validated against the running build at install).
      if (u64(rel.offset) + 8 > blob->code.size()) return false;
    }
    f.jit = std::move(blob);
  }
  return true;
}

bool read_header(ByteReader& r) {
  if (r.remaining() < 8) return false;
  if (r.read_u32_le() != kCacheMagic) return false;
  if (r.read_u32_le() != kCacheVersion) return false;
  return true;
}

std::optional<std::vector<u8>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::vector<u8>((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
}

/// Atomically publishes `bytes` at `path`; concurrent ranks race benignly.
void write_entry(const std::string& path, std::span<const u8> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      MW_WARN("cannot write cache entry " << tmp);
      return;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

void remove_corrupt(const std::string& path) {
  MW_WARN("removing corrupt cache entry " << path);
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

std::vector<u8> serialize_regcode(const RModule& rm) {
  ByteWriter w;
  w.write_u32_le(kCacheMagic);
  w.write_u32_le(kCacheVersion);
  w.write_leb_u32(u32(rm.funcs.size()));
  for (const RFunc& f : rm.funcs) write_rfunc(w, f);
  return w.take();
}

std::optional<RModule> deserialize_regcode(std::span<const u8> bytes) {
  try {
    ByteReader r(bytes);
    if (!read_header(r)) return std::nullopt;
    RModule rm;
    u32 nfuncs = r.read_leb_u32();
    // Each record is several bytes; a count beyond the remaining input is
    // corruption, not a module (guards the resize against huge LEBs).
    if (nfuncs > r.remaining()) return std::nullopt;
    rm.funcs.resize(nfuncs);
    for (RFunc& f : rm.funcs)
      if (!read_rfunc(r, f)) return std::nullopt;
    if (!r.done()) return std::nullopt;
    return rm;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::vector<u8> serialize_rfunc(const RFunc& f) {
  ByteWriter w;
  w.write_u32_le(kCacheMagic);
  w.write_u32_le(kCacheVersion);
  write_rfunc(w, f);
  return w.take();
}

std::optional<RFunc> deserialize_rfunc(std::span<const u8> bytes) {
  try {
    ByteReader r(bytes);
    if (!read_header(r)) return std::nullopt;
    RFunc f;
    if (!read_rfunc(r, f)) return std::nullopt;
    if (!r.done()) return std::nullopt;
    return f;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

FileSystemCache::FileSystemCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty())
    dir_ = (fs::temp_directory_path() / "mpiwasm-cache").string();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) MW_WARN("cannot create cache dir " << dir_ << ": " << ec.message());
}

std::string autotune_table_path(const std::string& dir) {
  const fs::path base =
      dir.empty() ? fs::temp_directory_path() / "mpiwasm-cache" : fs::path(dir);
  return (base / "coll-tune.table").string();
}

std::string FileSystemCache::entry_path(const Sha256Digest& hash,
                                        const std::string& tier_tag) const {
  return dir_ + "/" + hash.hex() + "-" + tier_tag + ".rcache";
}

std::string FileSystemCache::func_entry_path(const Sha256Digest& hash,
                                             u32 func_index,
                                             const std::string& tier_tag) const {
  return dir_ + "/" + hash.hex() + "-f" + std::to_string(func_index) + "-" +
         tier_tag + ".rcache";
}

std::optional<RModule> FileSystemCache::load(const Sha256Digest& hash,
                                             const std::string& tier_tag) const {
  const std::string path = entry_path(hash, tier_tag);
  auto bytes = read_file(path);
  if (!bytes.has_value()) return std::nullopt;
  auto rm = deserialize_regcode(*bytes);
  if (!rm.has_value()) remove_corrupt(path);
  return rm;
}

void FileSystemCache::store(const Sha256Digest& hash,
                            const std::string& tier_tag,
                            const RModule& rm) const {
  write_entry(entry_path(hash, tier_tag), serialize_regcode(rm));
}

std::optional<RFunc> FileSystemCache::load_func(
    const Sha256Digest& hash, u32 func_index,
    const std::string& tier_tag) const {
  const std::string path = func_entry_path(hash, func_index, tier_tag);
  auto bytes = read_file(path);
  if (!bytes.has_value()) return std::nullopt;
  auto f = deserialize_rfunc(*bytes);
  if (!f.has_value()) remove_corrupt(path);
  return f;
}

void FileSystemCache::store_func(const Sha256Digest& hash, u32 func_index,
                                 const std::string& tier_tag,
                                 const RFunc& f) const {
  write_entry(func_entry_path(hash, func_index, tier_tag),
              serialize_rfunc(f));
}

void FileSystemCache::clear() const {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".rcache") fs::remove(entry.path(), ec);
  }
}

}  // namespace mpiwasm::rt
