// Linear memory: a module's 32-bit sandboxed address space.
//
// MPIWasm reserves a contiguous range of the embedder's 64-bit address
// space for the module, records the base address at instantiation, and
// translates 32-bit module pointers by adding the base (paper §3.5,
// Figure 2). Like the paper (§2.2), we reserve the full range virtually and
// let the kernel map physical pages lazily; `base()` is therefore stable
// across memory.grow. Guest accesses are bounds-checked against the
// *logical* size (pages_), so growth semantics are exact.
#pragma once

#include <cstring>
#include <span>
#include <string>

#include "runtime/value.h"
#include "wasm/types.h"

namespace mpiwasm::rt {

class LinearMemory {
 public:
  LinearMemory() = default;
  LinearMemory(u32 min_pages, u32 max_pages);
  ~LinearMemory();
  LinearMemory(const LinearMemory&) = delete;
  LinearMemory& operator=(const LinearMemory&) = delete;
  LinearMemory(LinearMemory&& o) noexcept;
  LinearMemory& operator=(LinearMemory&& o) noexcept;

  /// Host address of module offset 0 (the "base address" of paper Fig. 2).
  u8* base() { return base_; }
  const u8* base() const { return base_; }

  u64 byte_size() const { return u64(pages_) * wasm::kPageSize; }
  u32 pages() const { return pages_; }
  u32 max_pages() const { return max_pages_; }

  /// memory.grow semantics: returns previous page count, or -1 on failure.
  i32 grow(u32 delta_pages);

  /// Bounds check used by every guest memory access and by the embedder's
  /// address translation; traps on out-of-bounds (never UB).
  void check(u64 addr, u64 len) const {
    if (addr + len > byte_size()) {
      throw Trap(TrapKind::kMemoryOutOfBounds,
                 "access at " + std::to_string(addr) + "+" +
                     std::to_string(len) + " exceeds memory size " +
                     std::to_string(byte_size()));
    }
  }

  /// Checked span over guest memory [ptr, ptr+len).
  std::span<u8> span(u32 ptr, u64 len) {
    check(ptr, len);
    return {base_ + ptr, size_t(len)};
  }
  std::span<const u8> span(u32 ptr, u64 len) const {
    check(ptr, len);
    return {base_ + ptr, size_t(len)};
  }

  template <typename T>
  T load(u64 addr) const {
    check(addr, sizeof(T));
    T v;
    std::memcpy(&v, base_ + addr, sizeof(T));
    return v;
  }
  template <typename T>
  void store(u64 addr, T v) {
    check(addr, sizeof(T));
    std::memcpy(base_ + addr, &v, sizeof(T));
  }

  // --- Raw-base fast path -------------------------------------------------
  // Unchecked accesses used by the k*Raw executor ops. Every raw access is
  // dominated by a passing kMemGuard that proved the whole iteration space
  // in-bounds against byte_size(), so no per-access check is needed. The
  // executor may cache base() for a whole frame: the reservation never
  // moves, and memory.grow only ever *extends* the valid range, so a guard
  // proved against a smaller byte_size() stays sufficient. grow() still
  // bumps generation() so callers holding a derived raw window (e.g. the
  // embedder's zero-copy spans) can detect growth and re-derive.
  template <typename T>
  T load_raw(u64 addr) const {
    T v;
    std::memcpy(&v, base_ + addr, sizeof(T));
    return v;
  }
  template <typename T>
  void store_raw(u64 addr, T v) {
    std::memcpy(base_ + addr, &v, sizeof(T));
  }
  /// Monotonic counter bumped by every successful memory.grow.
  u64 generation() const { return generation_; }

 private:
  void release();

  u8* base_ = nullptr;
  u64 reserved_bytes_ = 0;
  u32 pages_ = 0;
  u32 max_pages_ = 0;
  u64 generation_ = 0;
};

}  // namespace mpiwasm::rt
