// Linear memory: a module's 32-bit sandboxed address space.
//
// MPIWasm reserves a contiguous range of the embedder's 64-bit address
// space for the module, records the base address at instantiation, and
// translates 32-bit module pointers by adding the base (paper §3.5,
// Figure 2). Like the paper (§2.2), we reserve the full range virtually and
// let the kernel map physical pages lazily; `base()` is therefore stable
// across memory.grow. Guest accesses are bounds-checked against the
// *logical* size (pages_), so growth semantics are exact.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <string>

#include "runtime/value.h"
#include "wasm/types.h"

namespace mpiwasm::rt {

class LinearMemory {
 public:
  LinearMemory();
  LinearMemory(u32 min_pages, u32 max_pages, bool shared = false);
  ~LinearMemory();
  LinearMemory(const LinearMemory&) = delete;
  LinearMemory& operator=(const LinearMemory&) = delete;
  LinearMemory(LinearMemory&& o) noexcept;
  LinearMemory& operator=(LinearMemory&& o) noexcept;

  /// Host address of module offset 0 (the "base address" of paper Fig. 2).
  u8* base() { return base_; }
  const u8* base() const { return base_; }

  u64 byte_size() const {
    return u64(pages_.load(std::memory_order_acquire)) * wasm::kPageSize;
  }
  u32 pages() const { return pages_.load(std::memory_order_acquire); }
  u32 max_pages() const { return max_pages_; }
  /// Threads-proposal shared memory: growable concurrently, never moves.
  bool is_shared() const { return shared_; }

  /// memory.grow semantics: returns previous page count, or -1 on failure.
  /// Thread-safe: the reservation covers max_pages up front, so growth only
  /// publishes a larger logical size — the base address never relocates.
  i32 grow(u32 delta_pages);

  /// Bounds check used by every guest memory access and by the embedder's
  /// address translation; traps on out-of-bounds (never UB).
  void check(u64 addr, u64 len) const {
    if (addr + len > byte_size()) {
      throw Trap(TrapKind::kMemoryOutOfBounds,
                 "access at " + std::to_string(addr) + "+" +
                     std::to_string(len) + " exceeds memory size " +
                     std::to_string(byte_size()));
    }
  }

  /// Checked span over guest memory [ptr, ptr+len).
  std::span<u8> span(u32 ptr, u64 len) {
    check(ptr, len);
    return {base_ + ptr, size_t(len)};
  }
  std::span<const u8> span(u32 ptr, u64 len) const {
    check(ptr, len);
    return {base_ + ptr, size_t(len)};
  }

  template <typename T>
  T load(u64 addr) const {
    check(addr, sizeof(T));
    T v;
    std::memcpy(&v, base_ + addr, sizeof(T));
    return v;
  }
  template <typename T>
  void store(u64 addr, T v) {
    check(addr, sizeof(T));
    std::memcpy(base_ + addr, &v, sizeof(T));
  }

  // --- Raw-base fast path -------------------------------------------------
  // Unchecked accesses used by the k*Raw executor ops. Every raw access is
  // dominated by a passing kMemGuard that proved the whole iteration space
  // in-bounds against byte_size(), so no per-access check is needed. The
  // executor may cache base() for a whole frame: the reservation never
  // moves, and memory.grow only ever *extends* the valid range, so a guard
  // proved against a smaller byte_size() stays sufficient. grow() still
  // bumps generation() so callers holding a derived raw window (e.g. the
  // embedder's zero-copy spans) can detect growth and re-derive.
  template <typename T>
  T load_raw(u64 addr) const {
    T v;
    std::memcpy(&v, base_ + addr, sizeof(T));
    return v;
  }
  template <typename T>
  void store_raw(u64 addr, T v) {
    std::memcpy(base_ + addr, &v, sizeof(T));
  }
  /// Monotonic counter bumped by every successful memory.grow.
  u64 generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // --- 0xFE atomics (threads proposal) ------------------------------------
  // All accesses are seq-cst and trap (kUnalignedAtomic) when the effective
  // address is not a multiple of the access width. base_ is page-aligned,
  // so a naturally-aligned guest address is naturally aligned in the host.

  void check_atomic(u64 addr, u64 len) const {
    check(addr, len);
    if ((addr & (len - 1)) != 0)
      throw Trap(TrapKind::kUnalignedAtomic,
                 "atomic access at " + std::to_string(addr) +
                     " not aligned to " + std::to_string(len) + " bytes");
  }

  template <typename T>
  T atomic_load(u64 addr) const {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .load(std::memory_order_seq_cst);
  }
  template <typename T>
  void atomic_store(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .store(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_add(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .fetch_add(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_sub(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .fetch_sub(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_and(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .fetch_and(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_or(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .fetch_or(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_xor(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .fetch_xor(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_xchg(u64 addr, T v) {
    check_atomic(addr, sizeof(T));
    return std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .exchange(v, std::memory_order_seq_cst);
  }
  template <typename T>
  T atomic_rmw_cmpxchg(u64 addr, T expected, T replacement) {
    check_atomic(addr, sizeof(T));
    std::atomic_ref<T>(*reinterpret_cast<T*>(base_ + addr))
        .compare_exchange_strong(expected, replacement,
                                 std::memory_order_seq_cst);
    return expected;  // holds the old value on success and failure alike
  }

  // Futex-style wait/notify over a per-address parking table. wait returns
  // 0 (woken by notify), 1 (value != expected), or 2 (timed out);
  // timeout_ns < 0 waits forever. notify returns the number of waiters
  // granted a wake token.
  u32 atomic_notify(u64 addr, u32 count);
  u32 atomic_wait32(u64 addr, u32 expected, i64 timeout_ns);
  u32 atomic_wait64(u64 addr, u64 expected, i64 timeout_ns);

 private:
  struct MemSync;  // grow mutex + parking table (memory.cc)

  void release();

  u8* base_ = nullptr;
  u64 reserved_bytes_ = 0;
  std::atomic<u32> pages_{0};
  u32 max_pages_ = 0;
  bool shared_ = false;
  std::atomic<u64> generation_{0};
  std::unique_ptr<MemSync> sync_;
};

}  // namespace mpiwasm::rt
