// JIT runtime support: CPU feature detection, the helper registry native
// code calls back into, and the trap/unwind activation machinery.
//
// Control-flow contract between native frames and C++:
//   - JIT frames carry no unwind info, so a C++ exception must NEVER
//     propagate through them. Every helper that can trap catches the
//     exception, parks it in a thread-local std::exception_ptr, and
//     longjmps to the innermost jit_enter(), which rethrows it on the C++
//     side. JIT frames hold no destructors, so the longjmp is safe.
//   - Helper addresses are process-specific (ASLR + rebuilds), so blobs
//     reference helpers by JitHelperId; JitArena::install patches the
//     movabs sites recorded in JitBlob::relocs.
#pragma once

#include "runtime/regcode.h"
#include "runtime/value.h"

namespace mpiwasm::rt {

class Instance;

/// CPU feature word recorded in every JitBlob. A blob is only runnable when
/// its recorded word is a subset of the host's jit_cpu_features().
enum JitCpuFeature : u32 {
  kJitFeatSse3 = 1u << 0,
  kJitFeatSsse3 = 1u << 1,
  kJitFeatSse41 = 1u << 2,
  kJitFeatSse42 = 1u << 3,
  kJitFeatPopcnt = 1u << 4,
  kJitFeatLzcnt = 1u << 5,
  kJitFeatBmi1 = 1u << 6,
};

/// Detects the host's feature word once per process (cpuid).
u32 jit_cpu_features();

/// Hash pinning everything the templates hard-code about this build: the
/// codegen version, the ROp numbering, sizeof(Slot), the JitEnv field
/// offsets, and the helper-table layout. Any change invalidates every
/// cached native blob (clean rejection, threaded fallback).
u64 jit_layout_hash();

/// Reads the MPIWASM_JIT environment variable once per process: "0",
/// "false", or "off" disable the JIT tier (kJit degrades to kOptimizing and
/// tiered promotion stops at the optimizing stage); anything else —
/// including unset — enables it.
bool jit_enabled_from_env();

/// The block of state a JIT entry receives in %rdi. The prologue loads the
/// fields into fixed callee-saved registers (offsets are part of
/// jit_layout_hash()):
///   inst -> r14, regs -> rbx, globals -> r12, mem_base -> r13,
///   mem_size -> r15.
struct JitEnv {
  Instance* inst;  // offset 0
  Slot* regs;      // offset 8
  Slot* globals;   // offset 16
  u8* mem_base;    // offset 24
  u64 mem_size;    // offset 32
};

using JitEntryFn = void (*)(void*);  // void(JitEnv*)

/// Runs `fn` under a fresh trap activation: builds the JitEnv, setjmps,
/// calls the native code, and rethrows any parked exception after the
/// native frames have been discarded by longjmp. Nested (wasm->wasm) JIT
/// calls stack activations.
void jit_enter(JitEntryFn fn, Instance& inst, Slot* regs);

/// Helpers callable from JIT code, identified by stable ordinal (the
/// ordinal order is part of jit_layout_hash()). Arguments follow the SysV
/// C ABI; memory-state-returning helpers hand back {base,size} in rax:rdx
/// so templates can reload r13/r15 after any call or grow.
enum class JitHelperId : u32 {
  kTrapOob = 0,          // (addr, len, mem_size) noreturn
  kTrapUnreachable,      // () noreturn
  kCall,                 // (Instance*, fidx, Slot* argbase) -> {base,size}
  kCallIndirect,         // (Instance*, type_imm, Slot* argbase, argc) -> {base,size}
  kMemoryGrow,           // (Instance*, Slot* inout) -> {base,size}
  kMemoryCopy,           // (Instance*, d, s, n)
  kMemoryFill,           // (Instance*, d, val, n)
  kMemGuard,             // (b, c, d, imm, mem_size) -> u32
  kI32DivS, kI32DivU, kI32RemS, kI32RemU,
  kI64DivS, kI64DivU, kI64RemS, kI64RemU,
  kI32Clz, kI32Ctz, kI32Popcnt, kI64Clz, kI64Ctz, kI64Popcnt,
  kF32Min, kF32Max, kF64Min, kF64Max,
  kF32Nearest, kF64Nearest,
  kF32Ceil, kF32Floor, kF32Trunc, kF64Ceil, kF64Floor, kF64Trunc,
  kI32TruncF32S, kI32TruncF32U, kI32TruncF64S, kI32TruncF64U,
  kI64TruncF32S, kI64TruncF32U, kI64TruncF64S, kI64TruncF64U,
  kF32ConvertI64U, kF64ConvertI64U,
  // Threads/atomics (v7). The pointer-taking rmw helpers receive the
  // already-bounds-and-alignment-checked host address; wait/notify go
  // through the Instance so they can reach the memory's parking table.
  kTrapUnalignedAtomic,  // (addr, len) noreturn
  kAtomicAnd8, kAtomicAnd16, kAtomicAnd32, kAtomicAnd64,    // (u8* p, u64 v) -> old
  kAtomicOr8, kAtomicOr16, kAtomicOr32, kAtomicOr64,        // (u8* p, u64 v) -> old
  kAtomicXor8, kAtomicXor16, kAtomicXor32, kAtomicXor64,    // (u8* p, u64 v) -> old
  kAtomicCmpxchg8, kAtomicCmpxchg16,                        // (u8* p, u64 expected,
  kAtomicCmpxchg32, kAtomicCmpxchg64,                       //  u64 repl) -> old
  kAtomicWait32,  // (Instance*, u64 addr, u32 expected, i64 timeout_ns) -> u32
  kAtomicWait64,  // (Instance*, u64 addr, u64 expected, i64 timeout_ns) -> u32
  kAtomicNotify,  // (Instance*, u64 addr, u32 count) -> u32
  kCount,
};

/// Address of helper `id`; aborts on out-of-range ids (corrupt blob).
const void* jit_helper_address(u32 id);

}  // namespace mpiwasm::rt
