#include "runtime/jit_support.h"

#include <cpuid.h>

#include <csetjmp>
#include <cstdlib>
#include <exception>
#include <string>

#include "runtime/arith.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "runtime/memory.h"

namespace mpiwasm::rt {

namespace {

// Bump when any template's encoding or register assignment changes in a way
// that would make a previously cached blob wrong (not just stale).
constexpr u64 kJitCodegenVersion = 1;

/// One in-flight native activation per (possibly nested) jit_enter. The
/// jmp_buf is the landing pad trap helpers longjmp to; `prev` restores the
/// outer activation when a nested wasm->wasm JIT call returns.
struct JitActivation {
  std::jmp_buf jb;
  JitActivation* prev;
};

thread_local JitActivation* g_act = nullptr;
thread_local std::exception_ptr g_pending;

/// Discards the native frames between the failing helper and the innermost
/// jit_enter. Only reached with g_pending set.
[[noreturn]] void unwind_pending() { std::longjmp(g_act->jb, 1); }

// Parks the exception from `expr` and unwinds instead of letting it
// propagate through native frames (which carry no unwind tables).
#define MW_JIT_GUARDED(expr)                  \
  bool trapped = false;                       \
  try {                                       \
    expr;                                     \
  } catch (...) {                             \
    g_pending = std::current_exception();     \
    trapped = true;                           \
  }                                           \
  if (trapped) unwind_pending();

/// Pair returned in rax:rdx so templates can reload the memory base/size
/// registers after any operation that may have grown or re-entered memory.
struct JitMemPair {
  u8* base;
  u64 size;
};
static_assert(sizeof(JitMemPair) == 16);

JitMemPair mem_pair(Instance* inst) {
  LinearMemory& m = inst->memory();
  return {m.base(), m.byte_size()};
}

// --- Trap helpers (noreturn: park + unwind) --------------------------------

[[noreturn]] void h_trap_oob(u64 addr, u64 len, u64 size) {
  // Message must match LinearMemory::check byte-for-byte so trap points and
  // texts are indistinguishable across tiers.
  try {
    throw Trap(TrapKind::kMemoryOutOfBounds,
               "access at " + std::to_string(addr) + "+" + std::to_string(len) +
                   " exceeds memory size " + std::to_string(size));
  } catch (...) {
    g_pending = std::current_exception();
  }
  unwind_pending();
}

[[noreturn]] void h_trap_unreachable() {
  try {
    throw Trap(TrapKind::kUnreachable, "unreachable executed");
  } catch (...) {
    g_pending = std::current_exception();
  }
  unwind_pending();
}

// --- Call / memory-state helpers -------------------------------------------

JitMemPair h_call(Instance* inst, u32 fidx, Slot* argbase) {
  MW_JIT_GUARDED(inst->call_function(fidx, argbase));
  return mem_pair(inst);
}

JitMemPair h_call_indirect(Instance* inst, u32 type_imm, Slot* argbase,
                           u32 argc) {
  MW_JIT_GUARDED({
    u32 idx = argbase[argc].u32v;
    const auto& tbl = inst->table();
    if (idx >= tbl.size() || tbl[idx] == UINT32_MAX)
      throw Trap(TrapKind::kUndefinedTableElement,
                 "table index " + std::to_string(idx));
    u32 fidx = tbl[idx];
    const CompiledModule& cm = inst->compiled();
    if (cm.func_canon[fidx] != cm.canon_type_ids[type_imm])
      throw Trap(TrapKind::kIndirectCallTypeMismatch,
                 "signature mismatch at table index " + std::to_string(idx));
    inst->call_function(fidx, argbase);
  });
  return mem_pair(inst);
}

JitMemPair h_memory_grow(Instance* inst, Slot* slot) {
  slot->i32v = inst->memory().grow(slot->u32v);
  return mem_pair(inst);
}

void h_memory_copy(Instance* inst, u32 d, u32 s, u32 n) {
  MW_JIT_GUARDED({
    LinearMemory& mem = inst->memory();
    mem.check(d, n);
    mem.check(s, n);
    std::memmove(mem.base() + d, mem.base() + s, size_t(n));
  });
}

void h_memory_fill(Instance* inst, u32 d, u32 val, u32 n) {
  MW_JIT_GUARDED({
    LinearMemory& mem = inst->memory();
    mem.check(d, n);
    std::memset(mem.base() + d, int(val & 0xFF), size_t(n));
  });
}

u32 h_mem_guard(u32 bval, u32 cval, u32 d, u64 imm, u64 mem_size) {
  // Mirrors the kMemGuard handler in exec_ops.inc exactly.
  const bool uns = (d >> 31) != 0;
  const u64 coef = d & 0x7FFFFFFFu;
  const u64 step = imm >> 48;
  const u64 kmax = imm & 0xFFFFFFFFFFFFull;
  bool ok;
  if (uns) {
    u32 iu = cval, nu = bval;
    ok = iu >= nu || coef * (u64(nu) - 1 + step) + kmax <= mem_size;
  } else {
    i32 iv = i32(cval), nv = i32(bval);
    ok = iv >= nv ||
         (iv >= 0 && u64(u32(nv - 1)) + step <= 0x7FFFFFFFull &&
          coef * (u64(u32(nv - 1)) + step) + kmax <= mem_size);
  }
  return ok ? 1u : 0u;
}

// --- Trapping arithmetic -----------------------------------------------------

i32 h_i32_div_s(i32 a, i32 b) {
  i32 r = 0;
  MW_JIT_GUARDED(r = arith::i32_div_s(a, b));
  return r;
}
u32 h_i32_div_u(u32 a, u32 b) {
  u32 r = 0;
  MW_JIT_GUARDED(r = arith::i32_div_u(a, b));
  return r;
}
i32 h_i32_rem_s(i32 a, i32 b) {
  i32 r = 0;
  MW_JIT_GUARDED(r = arith::i32_rem_s(a, b));
  return r;
}
u32 h_i32_rem_u(u32 a, u32 b) {
  u32 r = 0;
  MW_JIT_GUARDED(r = arith::i32_rem_u(a, b));
  return r;
}
i64 h_i64_div_s(i64 a, i64 b) {
  i64 r = 0;
  MW_JIT_GUARDED(r = arith::i64_div_s(a, b));
  return r;
}
u64 h_i64_div_u(u64 a, u64 b) {
  u64 r = 0;
  MW_JIT_GUARDED(r = arith::i64_div_u(a, b));
  return r;
}
i64 h_i64_rem_s(i64 a, i64 b) {
  i64 r = 0;
  MW_JIT_GUARDED(r = arith::i64_rem_s(a, b));
  return r;
}
u64 h_i64_rem_u(u64 a, u64 b) {
  u64 r = 0;
  MW_JIT_GUARDED(r = arith::i64_rem_u(a, b));
  return r;
}

// --- Bit counting (used when lzcnt/tzcnt/popcnt are unavailable) -------------

u32 h_i32_clz(u32 x) { return u32(std::countl_zero(x)); }
u32 h_i32_ctz(u32 x) { return u32(std::countr_zero(x)); }
u32 h_i32_popcnt(u32 x) { return u32(std::popcount(x)); }
u64 h_i64_clz(u64 x) { return u64(std::countl_zero(x)); }
u64 h_i64_ctz(u64 x) { return u64(std::countr_zero(x)); }
u64 h_i64_popcnt(u64 x) { return u64(std::popcount(x)); }

// --- Float semantics helpers --------------------------------------------------

f32 h_f32_min(f32 a, f32 b) { return arith::fmin_wasm(a, b); }
f32 h_f32_max(f32 a, f32 b) { return arith::fmax_wasm(a, b); }
f64 h_f64_min(f64 a, f64 b) { return arith::fmin_wasm(a, b); }
f64 h_f64_max(f64 a, f64 b) { return arith::fmax_wasm(a, b); }
f32 h_f32_nearest(f32 x) { return arith::fnearest(x); }
f64 h_f64_nearest(f64 x) { return arith::fnearest(x); }
f32 h_f32_ceil(f32 x) { return std::ceil(x); }
f32 h_f32_floor(f32 x) { return std::floor(x); }
f32 h_f32_trunc(f32 x) { return std::trunc(x); }
f64 h_f64_ceil(f64 x) { return std::ceil(x); }
f64 h_f64_floor(f64 x) { return std::floor(x); }
f64 h_f64_trunc(f64 x) { return std::trunc(x); }

// --- Checked truncation -------------------------------------------------------

i32 h_i32_trunc_f32_s(f32 x) {
  i32 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<i32>(x, "i32.trunc_f32_s"));
  return r;
}
u32 h_i32_trunc_f32_u(f32 x) {
  u32 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<u32>(x, "i32.trunc_f32_u"));
  return r;
}
i32 h_i32_trunc_f64_s(f64 x) {
  i32 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<i32>(x, "i32.trunc_f64_s"));
  return r;
}
u32 h_i32_trunc_f64_u(f64 x) {
  u32 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<u32>(x, "i32.trunc_f64_u"));
  return r;
}
i64 h_i64_trunc_f32_s(f32 x) {
  i64 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<i64>(x, "i64.trunc_f32_s"));
  return r;
}
u64 h_i64_trunc_f32_u(f32 x) {
  u64 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<u64>(x, "i64.trunc_f32_u"));
  return r;
}
i64 h_i64_trunc_f64_s(f64 x) {
  i64 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<i64>(x, "i64.trunc_f64_s"));
  return r;
}
u64 h_i64_trunc_f64_u(f64 x) {
  u64 r = 0;
  MW_JIT_GUARDED(r = arith::trunc_checked<u64>(x, "i64.trunc_f64_u"));
  return r;
}

f32 h_f32_convert_i64_u(u64 x) { return f32(x); }
f64 h_f64_convert_i64_u(u64 x) { return f64(x); }

// --- Threads/atomics ----------------------------------------------------------

[[noreturn]] void h_trap_unaligned_atomic(u64 addr, u64 len) {
  // Message must match LinearMemory::check_atomic byte-for-byte.
  try {
    throw Trap(TrapKind::kUnalignedAtomic,
               "atomic access at " + std::to_string(addr) + " not aligned to " +
                   std::to_string(len) + " bytes");
  } catch (...) {
    g_pending = std::current_exception();
  }
  unwind_pending();
}

// The rmw pointer helpers receive a host address the template has already
// bounds- and alignment-checked, so the atomic_ref cast is well-formed.
template <typename T, typename F>
u64 atomic_rmw_ptr(u8* p, u64 v, F f) {
  return u64(f(std::atomic_ref<T>(*reinterpret_cast<T*>(p)), T(v)));
}

u64 h_atomic_and8(u8* p, u64 v) {
  return atomic_rmw_ptr<u8>(p, v, [](auto r, u8 x) {
    return r.fetch_and(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_and16(u8* p, u64 v) {
  return atomic_rmw_ptr<u16>(p, v, [](auto r, u16 x) {
    return r.fetch_and(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_and32(u8* p, u64 v) {
  return atomic_rmw_ptr<u32>(p, v, [](auto r, u32 x) {
    return r.fetch_and(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_and64(u8* p, u64 v) {
  return atomic_rmw_ptr<u64>(p, v, [](auto r, u64 x) {
    return r.fetch_and(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_or8(u8* p, u64 v) {
  return atomic_rmw_ptr<u8>(p, v, [](auto r, u8 x) {
    return r.fetch_or(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_or16(u8* p, u64 v) {
  return atomic_rmw_ptr<u16>(p, v, [](auto r, u16 x) {
    return r.fetch_or(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_or32(u8* p, u64 v) {
  return atomic_rmw_ptr<u32>(p, v, [](auto r, u32 x) {
    return r.fetch_or(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_or64(u8* p, u64 v) {
  return atomic_rmw_ptr<u64>(p, v, [](auto r, u64 x) {
    return r.fetch_or(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_xor8(u8* p, u64 v) {
  return atomic_rmw_ptr<u8>(p, v, [](auto r, u8 x) {
    return r.fetch_xor(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_xor16(u8* p, u64 v) {
  return atomic_rmw_ptr<u16>(p, v, [](auto r, u16 x) {
    return r.fetch_xor(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_xor32(u8* p, u64 v) {
  return atomic_rmw_ptr<u32>(p, v, [](auto r, u32 x) {
    return r.fetch_xor(x, std::memory_order_seq_cst);
  });
}
u64 h_atomic_xor64(u8* p, u64 v) {
  return atomic_rmw_ptr<u64>(p, v, [](auto r, u64 x) {
    return r.fetch_xor(x, std::memory_order_seq_cst);
  });
}

template <typename T>
u64 atomic_cmpxchg_ptr(u8* p, u64 expected, u64 repl) {
  T e = T(expected);
  std::atomic_ref<T>(*reinterpret_cast<T*>(p))
      .compare_exchange_strong(e, T(repl), std::memory_order_seq_cst);
  return u64(e);  // old value on success and failure alike
}

u64 h_atomic_cmpxchg8(u8* p, u64 e, u64 r) { return atomic_cmpxchg_ptr<u8>(p, e, r); }
u64 h_atomic_cmpxchg16(u8* p, u64 e, u64 r) { return atomic_cmpxchg_ptr<u16>(p, e, r); }
u64 h_atomic_cmpxchg32(u8* p, u64 e, u64 r) { return atomic_cmpxchg_ptr<u32>(p, e, r); }
u64 h_atomic_cmpxchg64(u8* p, u64 e, u64 r) { return atomic_cmpxchg_ptr<u64>(p, e, r); }

// wait/notify go through the Instance so LinearMemory can do its own
// checking (bounds + alignment trap inside the guarded region) and reach
// the parking table.
u32 h_atomic_wait32(Instance* inst, u64 addr, u32 expected, i64 timeout_ns) {
  u32 r = 0;
  MW_JIT_GUARDED(r = inst->memory().atomic_wait32(addr, expected, timeout_ns));
  return r;
}
u32 h_atomic_wait64(Instance* inst, u64 addr, u64 expected, i64 timeout_ns) {
  u32 r = 0;
  MW_JIT_GUARDED(r = inst->memory().atomic_wait64(addr, expected, timeout_ns));
  return r;
}
u32 h_atomic_notify(Instance* inst, u64 addr, u32 count) {
  u32 r = 0;
  MW_JIT_GUARDED(r = inst->memory().atomic_notify(addr, count));
  return r;
}

#undef MW_JIT_GUARDED

// Table order must match JitHelperId (checked by the kCount sentinel).
const void* const g_helper_table[u32(JitHelperId::kCount)] = {
    reinterpret_cast<const void*>(&h_trap_oob),
    reinterpret_cast<const void*>(&h_trap_unreachable),
    reinterpret_cast<const void*>(&h_call),
    reinterpret_cast<const void*>(&h_call_indirect),
    reinterpret_cast<const void*>(&h_memory_grow),
    reinterpret_cast<const void*>(&h_memory_copy),
    reinterpret_cast<const void*>(&h_memory_fill),
    reinterpret_cast<const void*>(&h_mem_guard),
    reinterpret_cast<const void*>(&h_i32_div_s),
    reinterpret_cast<const void*>(&h_i32_div_u),
    reinterpret_cast<const void*>(&h_i32_rem_s),
    reinterpret_cast<const void*>(&h_i32_rem_u),
    reinterpret_cast<const void*>(&h_i64_div_s),
    reinterpret_cast<const void*>(&h_i64_div_u),
    reinterpret_cast<const void*>(&h_i64_rem_s),
    reinterpret_cast<const void*>(&h_i64_rem_u),
    reinterpret_cast<const void*>(&h_i32_clz),
    reinterpret_cast<const void*>(&h_i32_ctz),
    reinterpret_cast<const void*>(&h_i32_popcnt),
    reinterpret_cast<const void*>(&h_i64_clz),
    reinterpret_cast<const void*>(&h_i64_ctz),
    reinterpret_cast<const void*>(&h_i64_popcnt),
    reinterpret_cast<const void*>(&h_f32_min),
    reinterpret_cast<const void*>(&h_f32_max),
    reinterpret_cast<const void*>(&h_f64_min),
    reinterpret_cast<const void*>(&h_f64_max),
    reinterpret_cast<const void*>(&h_f32_nearest),
    reinterpret_cast<const void*>(&h_f64_nearest),
    reinterpret_cast<const void*>(&h_f32_ceil),
    reinterpret_cast<const void*>(&h_f32_floor),
    reinterpret_cast<const void*>(&h_f32_trunc),
    reinterpret_cast<const void*>(&h_f64_ceil),
    reinterpret_cast<const void*>(&h_f64_floor),
    reinterpret_cast<const void*>(&h_f64_trunc),
    reinterpret_cast<const void*>(&h_i32_trunc_f32_s),
    reinterpret_cast<const void*>(&h_i32_trunc_f32_u),
    reinterpret_cast<const void*>(&h_i32_trunc_f64_s),
    reinterpret_cast<const void*>(&h_i32_trunc_f64_u),
    reinterpret_cast<const void*>(&h_i64_trunc_f32_s),
    reinterpret_cast<const void*>(&h_i64_trunc_f32_u),
    reinterpret_cast<const void*>(&h_i64_trunc_f64_s),
    reinterpret_cast<const void*>(&h_i64_trunc_f64_u),
    reinterpret_cast<const void*>(&h_f32_convert_i64_u),
    reinterpret_cast<const void*>(&h_f64_convert_i64_u),
    reinterpret_cast<const void*>(&h_trap_unaligned_atomic),
    reinterpret_cast<const void*>(&h_atomic_and8),
    reinterpret_cast<const void*>(&h_atomic_and16),
    reinterpret_cast<const void*>(&h_atomic_and32),
    reinterpret_cast<const void*>(&h_atomic_and64),
    reinterpret_cast<const void*>(&h_atomic_or8),
    reinterpret_cast<const void*>(&h_atomic_or16),
    reinterpret_cast<const void*>(&h_atomic_or32),
    reinterpret_cast<const void*>(&h_atomic_or64),
    reinterpret_cast<const void*>(&h_atomic_xor8),
    reinterpret_cast<const void*>(&h_atomic_xor16),
    reinterpret_cast<const void*>(&h_atomic_xor32),
    reinterpret_cast<const void*>(&h_atomic_xor64),
    reinterpret_cast<const void*>(&h_atomic_cmpxchg8),
    reinterpret_cast<const void*>(&h_atomic_cmpxchg16),
    reinterpret_cast<const void*>(&h_atomic_cmpxchg32),
    reinterpret_cast<const void*>(&h_atomic_cmpxchg64),
    reinterpret_cast<const void*>(&h_atomic_wait32),
    reinterpret_cast<const void*>(&h_atomic_wait64),
    reinterpret_cast<const void*>(&h_atomic_notify),
};

}  // namespace

u32 jit_cpu_features() {
  static const u32 feats = [] {
    u32 w = 0;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
      if (ecx & (1u << 0)) w |= kJitFeatSse3;
      if (ecx & (1u << 9)) w |= kJitFeatSsse3;
      if (ecx & (1u << 19)) w |= kJitFeatSse41;
      if (ecx & (1u << 20)) w |= kJitFeatSse42;
      if (ecx & (1u << 23)) w |= kJitFeatPopcnt;
    }
    if (__get_cpuid(0x80000001, &eax, &ebx, &ecx, &edx)) {
      if (ecx & (1u << 5)) w |= kJitFeatLzcnt;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      if (ebx & (1u << 3)) w |= kJitFeatBmi1;
    }
    return w;
  }();
  return feats;
}

u64 jit_layout_hash() {
  // FNV-1a over the layout constants the templates bake in.
  u64 h = 1469598103934665603ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(kJitCodegenVersion);
  mix(u64(ROp::kCount));
  mix(sizeof(Slot));
  mix(offsetof(JitEnv, inst));
  mix(offsetof(JitEnv, regs));
  mix(offsetof(JitEnv, globals));
  mix(offsetof(JitEnv, mem_base));
  mix(offsetof(JitEnv, mem_size));
  mix(u64(JitHelperId::kCount));
  return h;
}

bool jit_enabled_from_env() {
  static const bool enabled = [] {
    const char* v = std::getenv("MPIWASM_JIT");
    if (v == nullptr) return true;
    std::string s(v);
    return !(s == "0" || s == "false" || s == "off");
  }();
  return enabled;
}

const void* jit_helper_address(u32 id) {
  MW_CHECK(id < u32(JitHelperId::kCount), "jit helper id out of range");
  return g_helper_table[id];
}

void jit_enter(JitEntryFn fn, Instance& inst, Slot* regs) {
  JitEnv env;
  env.inst = &inst;
  env.regs = regs;
  env.globals = inst.globals();
  LinearMemory& m = inst.memory();
  env.mem_base = m.base();
  env.mem_size = m.byte_size();

  JitActivation act;
  act.prev = g_act;
  g_act = &act;
  if (setjmp(act.jb) == 0) {
    fn(&env);
    g_act = act.prev;
    return;
  }
  // A helper parked an exception and longjmp'ed past the native frames;
  // resume C++ unwinding from here.
  g_act = act.prev;
  std::exception_ptr p = std::move(g_pending);
  g_pending = nullptr;
  std::rethrow_exception(p);
}

}  // namespace mpiwasm::rt
