#include "runtime/jit_x64.h"

#include <cstring>
#include <initializer_list>

#include "runtime/jit_support.h"

namespace mpiwasm::rt {

namespace {

using wasm::V128;

// Register numbers (low 3 bits go in modrm/SIB; bit 3 goes in REX).
enum Gpr : u8 {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};
enum Xmm : u8 { X0 = 0, X1 = 1 };

// Condition-code low nibbles (0F 8x jcc rel32, 7x jcc rel8, 0F 9x setcc).
enum Cc : u8 {
  CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6, CC_A = 0x7,
  CC_P = 0xA, CC_NP = 0xB, CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF,
};

/// One function's emission state. The templates use a fixed register
/// discipline (see jit_x64.h): rax/rcx/rdx and xmm0/xmm1 are the only
/// scratch registers, every value lives in the Slot frame between
/// instructions, so each RegCode instruction maps to an independent
/// template and there is no register allocator.
struct Emitter {
  const RFunc& f;
  u32 feats;
  std::vector<u8> code;
  std::vector<JitReloc> relocs;
  std::vector<u32> ioff;  // native offset of each RegCode instruction

  struct BranchFix { u32 at; u32 target; };   // rel32 to instruction index
  struct PoolFix { u32 at; u32 index; };      // rip disp32 to pool entry
  struct TableFix { u32 at; u32 pool; };      // rip disp32 to a br table
  struct TrapSite { u32 at; u32 len; };       // rel32 to this site's OOB stub
  std::vector<BranchFix> branch_fixes;
  std::vector<PoolFix> pool_fixes;
  std::vector<TableFix> table_fixes;
  std::vector<TrapSite> trap_sites;
  std::vector<TrapSite> ua_sites;  // rel32 to this site's unaligned stub
  std::vector<V128> pool;  // f.v128_pool + emitter-generated masks

  Emitter(const RFunc& fn, u32 features)
      : f(fn), feats(features), pool(fn.v128_pool) {}

  // --- raw byte emission ---------------------------------------------------

  void b1(u8 v) { code.push_back(v); }
  void bs(std::initializer_list<u8> vs) {
    for (u8 v : vs) code.push_back(v);
  }
  void i32le(u32 v) {
    for (int i = 0; i < 4; ++i) b1(u8(v >> (8 * i)));
  }
  void i64le(u64 v) {
    for (int i = 0; i < 8; ++i) b1(u8(v >> (8 * i)));
  }
  void patch32(u32 at, u32 v) {
    for (int i = 0; i < 4; ++i) code[at + i] = u8(v >> (8 * i));
  }

  // --- instruction encoding primitives --------------------------------------

  void rex_if(bool w, u8 reg, u8 rm) {
    u8 r = u8(0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3));
    if (r != 0x40) b1(r);
  }

  /// modrm for [base + disp]; always mod=01/10 (disp present) so rbp/r13
  /// need no special case; rsp/r12 get the mandatory SIB.
  void modrm_mem(u8 reg, u8 base, i64 disp) {
    u8 rl = reg & 7, bl = base & 7;
    bool small = disp >= -128 && disp <= 127;
    b1(u8((small ? 0x40 : 0x80) | (rl << 3) | (bl == 4 ? 4 : bl)));
    if (bl == 4) b1(0x24);  // SIB: scale 1, no index, base rsp/r12
    if (small)
      b1(u8(i8(disp)));
    else
      i32le(u32(i32(disp)));
  }

  /// op reg, [base+disp] (or store form, same encoding with reversed opcode).
  void op_rm(u8 pfx, bool w, std::initializer_list<u8> ops, u8 reg, u8 base,
             i64 disp) {
    if (pfx) b1(pfx);
    rex_if(w, reg, base);
    for (u8 o : ops) b1(o);
    modrm_mem(reg, base, disp);
  }

  /// op reg, rm (register-direct form).
  void op_rr(u8 pfx, bool w, std::initializer_list<u8> ops, u8 reg, u8 rm) {
    if (pfx) b1(pfx);
    rex_if(w, reg, rm);
    for (u8 o : ops) b1(o);
    b1(u8(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  /// op reg, [r13 + rax] — the linear-memory access form. r13&7 == 5 forces
  /// a disp8 even at zero; index rax never needs REX.X.
  void op_mem(u8 pfx, bool w, std::initializer_list<u8> ops, u8 reg) {
    if (pfx) b1(pfx);
    b1(u8(0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | 1));  // REX.B = r13
    for (u8 o : ops) b1(o);
    b1(u8(0x44 | ((reg & 7) << 3)));  // mod=01, rm=SIB
    b1(0x05);                         // SIB: scale 1, index rax, base r13
    b1(0x00);                         // disp8 = 0
  }

  /// op reg, [rip + disp32]; returns the offset of the disp32 for fixups.
  u32 op_rip(u8 pfx, std::initializer_list<u8> ops, u8 reg) {
    if (pfx) b1(pfx);
    rex_if(false, reg, 0);
    for (u8 o : ops) b1(o);
    b1(u8(0x00 | ((reg & 7) << 3) | 5));  // mod=00 rm=101: rip-relative
    u32 at = u32(code.size());
    i32le(0);
    return at;
  }

  /// ALU group-1 (add=0 or=1 and=4 sub=5 xor=6 cmp=7) reg, imm.
  void alu_imm(bool w, u8 ext, u8 rm, i64 imm) {
    rex_if(w, 0, rm);
    if (imm >= -128 && imm <= 127) {
      b1(0x83);
      b1(u8(0xC0 | (ext << 3) | (rm & 7)));
      b1(u8(i8(imm)));
    } else {
      b1(0x81);
      b1(u8(0xC0 | (ext << 3) | (rm & 7)));
      i32le(u32(i32(imm)));
    }
  }

  /// Shift group-2 (rol=0 ror=1 shl=4 shr=5 sar=7) reg, imm8.
  void shift_imm(bool w, u8 ext, u8 rm, u8 imm) {
    rex_if(w, 0, rm);
    b1(0xC1);
    b1(u8(0xC0 | (ext << 3) | (rm & 7)));
    b1(imm);
  }

  void movabs(u8 reg, u64 v) {
    b1(u8(0x48 | (reg >> 3)));
    b1(u8(0xB8 | (reg & 7)));
    i64le(v);
  }

  // --- Slot-frame access (rbx = Slot* frame; one slot = 16 bytes) -----------

  i64 slot(u32 r) const { return i64(r) * 16; }

  void load32(u8 reg, u32 r) { op_rm(0, false, {0x8B}, reg, RBX, slot(r)); }
  void load64(u8 reg, u32 r) { op_rm(0, true, {0x8B}, reg, RBX, slot(r)); }
  void store32(u32 r, u8 reg) { op_rm(0, false, {0x89}, reg, RBX, slot(r)); }
  void store64(u32 r, u8 reg) { op_rm(0, true, {0x89}, reg, RBX, slot(r)); }
  void loadss(u8 x, u32 r) { op_rm(0xF3, false, {0x0F, 0x10}, x, RBX, slot(r)); }
  void loadsd(u8 x, u32 r) { op_rm(0xF2, false, {0x0F, 0x10}, x, RBX, slot(r)); }
  void storess(u32 r, u8 x) { op_rm(0xF3, false, {0x0F, 0x11}, x, RBX, slot(r)); }
  void storesd(u32 r, u8 x) { op_rm(0xF2, false, {0x0F, 0x11}, x, RBX, slot(r)); }
  void loadaps(u8 x, u32 r) { op_rm(0, false, {0x0F, 0x28}, x, RBX, slot(r)); }
  void storeaps(u32 r, u8 x) { op_rm(0, false, {0x0F, 0x29}, x, RBX, slot(r)); }

  /// Full 16-byte Slot copy (kMov, reinterprets, replace-lane base copy).
  void slot_copy(u32 a, u32 b) {
    if (a == b) return;
    loadaps(X0, b);
    storeaps(a, X0);
  }

  // --- local control-flow helpers --------------------------------------------

  u32 jcc8(u8 cc) {  // returns patch position of the rel8
    b1(u8(0x70 | cc));
    b1(0);
    return u32(code.size() - 1);
  }
  void label8(u32 at) { code[at] = u8(code.size() - (at + 1)); }

  void jcc32(u8 cc, u32 target) {
    bs({0x0F, u8(0x80 | cc)});
    branch_fixes.push_back({u32(code.size()), target});
    i32le(0);
  }
  void jmp32(u32 target) {
    b1(0xE9);
    branch_fixes.push_back({u32(code.size()), target});
    i32le(0);
  }

  // --- helper calls -----------------------------------------------------------

  /// movabs rax, &helper; call rax. The imm64 is recorded as a relocation;
  /// the current-process address is baked in so even an unpatched blob runs
  /// correctly in the emitting process.
  void call_helper(JitHelperId id) {
    bs({0x48, 0xB8});
    relocs.push_back({u32(code.size()), u32(id)});
    i64le(u64(reinterpret_cast<uintptr_t>(jit_helper_address(u32(id)))));
    bs({0xFF, 0xD0});
  }

  /// Reload r13/r15 from the {base,size} pair a memory-state helper returned
  /// in rax:rdx (memory may have grown or been touched by a callee).
  void reload_mem() {
    op_rr(0, true, {0x89}, RAX, R13);  // mov r13, rax
    op_rr(0, true, {0x89}, RDX, R15);  // mov r15, rdx
  }

  // --- effective addresses ------------------------------------------------------

  /// rax = u64(r[base_slot].u32) + imm. rcx is clobbered for 64-bit imms.
  void lin_addr(u32 base_slot, u64 imm) {
    load32(RAX, base_slot);  // 32-bit mov zero-extends
    add_imm_rax(imm);
  }

  /// rax = u64(u32(r[base].u32 + (r[idx].u32 << shift))) + imm — the IXADDR
  /// macro. The 32-bit add wraps and zero-extends exactly like the macro.
  void ix_addr(u32 base_slot, u32 idx_slot, u32 shift, u64 imm) {
    load32(RAX, idx_slot);
    if (shift & 31) shift_imm(false, 4, RAX, u8(shift & 31));
    op_rm(0, false, {0x03}, RAX, RBX, slot(base_slot));  // add eax, [base]
    add_imm_rax(imm);
  }

  void add_imm_rax(u64 imm) {
    if (imm == 0) return;
    if (imm <= 0x7FFFFFFFull) {
      alu_imm(true, 0, RAX, i64(imm));
    } else {
      movabs(RCX, imm);
      op_rr(0, true, {0x01}, RCX, RAX);  // add rax, rcx
    }
  }

  /// Bounds check: ja to an out-of-line stub when rax + len > r15. rax is
  /// the u64 effective address (< 2^33, so rax + len cannot wrap). The stub
  /// calls h_trap_oob(rax, len, r15) for a byte-identical check() message.
  void bounds_check(u32 len) {
    op_rm(0, true, {0x8D}, RCX, RAX, i64(len));  // lea rcx, [rax + len]
    op_rr(0, true, {0x39}, R15, RCX);            // cmp rcx, r15
    bs({0x0F, 0x87});                            // ja stub
    trap_sites.push_back({u32(code.size()), len});
    i32le(0);
  }

  void checked_addr(u32 base_slot, u64 imm, u32 len) {
    lin_addr(base_slot, imm);
    bounds_check(len);
  }

  /// Natural-alignment check for atomics: jnz to an out-of-line stub when
  /// the effective address in rax is not a multiple of len. The stub calls
  /// h_trap_unaligned_atomic(rax, len) for a byte-identical check_atomic
  /// message.
  void align_check(u32 len) {
    if (len == 1) return;
    bs({0xA8, u8(len - 1)});  // test al, len-1
    bs({0x0F, 0x85});         // jnz stub
    ua_sites.push_back({u32(code.size()), len});
    i32le(0);
  }

  // --- constant pool ---------------------------------------------------------

  u32 pool_const(const V128& v) {
    for (u32 i = u32(f.v128_pool.size()); i < pool.size(); ++i)
      if (std::memcmp(pool[i].bytes, v.bytes, 16) == 0) return i;
    pool.push_back(v);
    return u32(pool.size() - 1);
  }
  u32 splat_mask32(u32 v) {
    V128 m;
    for (int i = 0; i < 4; ++i) std::memcpy(m.bytes + i * 4, &v, 4);
    return pool_const(m);
  }
  u32 splat_mask64(u64 v) {
    V128 m;
    for (int i = 0; i < 2; ++i) std::memcpy(m.bytes + i * 8, &v, 8);
    return pool_const(m);
  }

  void load_pool(u8 x, u32 index) {  // movups x, [rip + pool[index]]
    u32 at = op_rip(0, {0x0F, 0x10}, x);
    pool_fixes.push_back({at, index});
  }

  // --- prologue / epilogue -----------------------------------------------------

  void prologue() {
    bs({0x55});                    // push rbp
    bs({0x48, 0x89, 0xE5});        // mov rbp, rsp
    bs({0x53});                    // push rbx
    bs({0x41, 0x54});              // push r12
    bs({0x41, 0x55});              // push r13
    bs({0x41, 0x56});              // push r14
    bs({0x41, 0x57});              // push r15
    bs({0x48, 0x83, 0xEC, 0x08});  // sub rsp, 8 (16-align call sites)
    op_rm(0, true, {0x8B}, R14, RDI, 0);   // inst
    op_rm(0, true, {0x8B}, RBX, RDI, 8);   // regs
    op_rm(0, true, {0x8B}, R12, RDI, 16);  // globals
    op_rm(0, true, {0x8B}, R13, RDI, 24);  // mem base
    op_rm(0, true, {0x8B}, R15, RDI, 32);  // mem size
  }

  void epilogue() {
    bs({0x48, 0x83, 0xC4, 0x08});  // add rsp, 8
    bs({0x41, 0x5F});              // pop r15
    bs({0x41, 0x5E});              // pop r14
    bs({0x41, 0x5D});              // pop r13
    bs({0x41, 0x5C});              // pop r12
    bs({0x5B});                    // pop rbx
    bs({0x5D});                    // pop rbp
    bs({0xC3});                    // ret
  }

  // --- finalization ------------------------------------------------------------

  void finish() {
    // Out-of-line OOB stubs (one per check so rax still holds the address).
    for (const TrapSite& t : trap_sites) {
      patch32(t.at, u32(code.size()) - (t.at + 4));
      op_rr(0, true, {0x89}, RAX, RDI);  // mov rdi, rax (address)
      b1(0xBE);                          // mov esi, len
      i32le(t.len);
      op_rr(0, true, {0x89}, R15, RDX);  // mov rdx, r15 (size)
      call_helper(JitHelperId::kTrapOob);
    }
    for (const TrapSite& t : ua_sites) {
      patch32(t.at, u32(code.size()) - (t.at + 4));
      op_rr(0, true, {0x89}, RAX, RDI);  // mov rdi, rax (address)
      b1(0xBE);                          // mov esi, len
      i32le(t.len);
      call_helper(JitHelperId::kTrapUnalignedAtomic);
    }

    // 16-aligned constant pool.
    while (code.size() & 15) b1(0xCC);
    u32 pool_base = u32(code.size());
    for (const V128& v : pool)
      for (u8 byte : v.bytes) b1(byte);
    for (const PoolFix& p : pool_fixes)
      patch32(p.at, pool_base + p.index * 16 - (p.at + 4));

    // br_table jump tables: i32 offsets relative to each table's start.
    std::vector<u32> table_off(f.br_pool.size(), 0);
    for (size_t i = 0; i < f.br_pool.size(); ++i) {
      table_off[i] = u32(code.size());
      for (u32 t : f.br_pool[i]) i32le(u32(i32(ioff[t]) - i32(table_off[i])));
    }
    for (const TableFix& t : table_fixes)
      patch32(t.at, table_off[t.pool] - (t.at + 4));

    for (const BranchFix& br : branch_fixes)
      patch32(br.at, u32(i32(ioff[br.target]) - i32(br.at + 4)));
  }

  bool emit_instr(const RInstr& in);
  bool emit_simd_or_fused(const RInstr& in);
  bool emit_atomic(const RInstr& in);
};

bool Emitter::emit_instr(const RInstr& in) {
  if (rop_is_atomic(in.op)) return emit_atomic(in);
  const u32 a = in.a, b = in.b, c = in.c;
  const u64 imm = in.imm;

  // setcc al; movzx eax, al; store32(a) — the tail of every scalar compare.
  auto setcc_store = [&](u8 cc) {
    bs({0x0F, u8(0x90 | cc), 0xC0});  // setcc al
    bs({0x0F, 0xB6, 0xC0});           // movzx eax, al
    store32(a, RAX);
  };
  // Integer compare: cmp r[b], r[c] then setcc.
  auto int_cmp = [&](bool w, u8 cc) {
    if (w)
      load64(RAX, b);
    else
      load32(RAX, b);
    op_rm(0, w, {0x3B}, RAX, RBX, slot(c));  // cmp (r)ax, [c]
    setcc_store(cc);
  };
  // Float eq/ne need the parity flag folded in (unordered => PF=1).
  auto f_eq_ne = [&](bool f64v, bool ne) {
    if (f64v)
      loadsd(X0, b);
    else
      loadss(X0, b);
    op_rm(f64v ? 0x66 : 0, false, {0x0F, 0x2E}, X0, RBX, slot(c));  // ucomis
    if (ne) {
      bs({0x0F, 0x9A, 0xC0});  // setp al
      bs({0x0F, 0x95, 0xC1});  // setne cl
      bs({0x08, 0xC8});        // or al, cl
    } else {
      bs({0x0F, 0x9B, 0xC0});  // setnp al
      bs({0x0F, 0x94, 0xC1});  // sete cl
      bs({0x20, 0xC8});        // and al, cl
    }
    bs({0x0F, 0xB6, 0xC0});  // movzx eax, al
    store32(a, RAX);
  };
  // Float ordered compare: ucomis x, [y]; seta/setae (unordered => false).
  auto f_ord = [&](bool f64v, u32 xs, u32 ys, u8 cc) {
    if (f64v)
      loadsd(X0, xs);
    else
      loadss(X0, xs);
    op_rm(f64v ? 0x66 : 0, false, {0x0F, 0x2E}, X0, RBX, slot(ys));
    setcc_store(cc);
  };
  // Integer binop with a memory source: op (r)ax, [c]; store.
  auto int_bin = [&](bool w, std::initializer_list<u8> ops) {
    if (w)
      load64(RAX, b);
    else
      load32(RAX, b);
    op_rm(0, w, ops, RAX, RBX, slot(c));
    if (w)
      store64(a, RAX);
    else
      store32(a, RAX);
  };
  // Variable shift/rotate through cl (hardware masking == wasm masking).
  auto int_shift = [&](bool w, u8 ext) {
    if (w)
      load64(RAX, b);
    else
      load32(RAX, b);
    load32(RCX, c);
    rex_if(w, 0, RAX);
    b1(0xD3);
    b1(u8(0xC0 | (ext << 3)));  // rm = rax
    if (w)
      store64(a, RAX);
    else
      store32(a, RAX);
  };
  // Two-int-arg helper call (div/rem): args from r[b], r[c].
  auto bin_helper = [&](bool w, JitHelperId id) {
    if (w) {
      load64(RDI, b);
      load64(RSI, c);
    } else {
      load32(RDI, b);
      load32(RSI, c);
    }
    call_helper(id);
    if (w)
      store64(a, RAX);
    else
      store32(a, RAX);
  };
  // Bit-count: hardware op when the feature is present, else helper.
  auto bit_count = [&](bool w, u8 opc, u32 feat, JitHelperId id) {
    if (feats & feat) {
      op_rm(0xF3, w, {0x0F, opc}, RAX, RBX, slot(b));
      if (w)
        store64(a, RAX);
      else
        store32(a, RAX);
    } else {
      if (w)
        load64(RDI, b);
      else
        load32(RDI, b);
      call_helper(id);
      if (w)
        store64(a, RAX);
      else
        store32(a, RAX);
    }
  };
  // f32/f64 binop: op x0, [c]; store (pfx F3 = ss, F2 = sd).
  auto f_bin = [&](bool f64v, u8 opc) {
    if (f64v) {
      loadsd(X0, b);
      op_rm(0xF2, false, {0x0F, opc}, X0, RBX, slot(c));
      storesd(a, X0);
    } else {
      loadss(X0, b);
      op_rm(0xF3, false, {0x0F, opc}, X0, RBX, slot(c));
      storess(a, X0);
    }
  };
  // f32/f64 min/max/nearest/... via an (xmm0[, xmm1]) -> xmm0 helper.
  auto f_bin_helper = [&](bool f64v, JitHelperId id) {
    if (f64v) {
      loadsd(X0, b);
      loadsd(X1, c);
    } else {
      loadss(X0, b);
      loadss(X1, c);
    }
    call_helper(id);
    if (f64v)
      storesd(a, X0);
    else
      storess(a, X0);
  };
  // roundss/roundsd when SSE4.1 is present, else helper.
  auto f_round = [&](bool f64v, u8 mode, JitHelperId id) {
    if (feats & kJitFeatSse41) {
      // 66 0F 3A 0A/0B /r ib with a memory source.
      op_rm(0x66, false, {0x0F, 0x3A, f64v ? u8(0x0B) : u8(0x0A)}, X0, RBX,
            slot(b));
      b1(mode);
    } else {
      if (f64v)
        loadsd(X0, b);
      else
        loadss(X0, b);
      call_helper(id);
    }
    if (f64v)
      storesd(a, X0);
    else
      storess(a, X0);
  };
  // f32/f64 -> int truncation helper: arg xmm0, result (r)ax.
  auto trunc_helper = [&](bool src64, bool dst64, JitHelperId id) {
    if (src64)
      loadsd(X0, b);
    else
      loadss(X0, b);
    call_helper(id);
    if (dst64)
      store64(a, RAX);
    else
      store32(a, RAX);
  };
  // Checked scalar load from [r13+rax] into r[a] (opcode list + width).
  auto load_mem = [&](bool w, std::initializer_list<u8> ops, u32 len,
                      bool store_w) {
    checked_addr(b, imm, len);
    op_mem(0, w, ops, RCX);
    if (store_w)
      store64(a, RCX);
    else
      store32(a, RCX);
  };
  // Checked scalar store of r[b]'s low bytes to [r13+rax].
  auto store_mem = [&](u8 pfx, bool w, std::initializer_list<u8> ops,
                       u32 len, bool load_w) {
    checked_addr(a, imm, len);
    if (load_w)
      load64(RCX, b);
    else
      load32(RCX, b);
    op_mem(pfx, w, ops, RCX);
  };
  switch (in.op) {
    case ROp::kNop:
      return true;
    case ROp::kMov:
    case ROp::kI32ReinterpretF32:
    case ROp::kI64ReinterpretF64:
    case ROp::kF32ReinterpretI32:
    case ROp::kF64ReinterpretI64:
      slot_copy(a, b);
      return true;
    case ROp::kConst:
      if (imm == u64(i64(i32(u32(imm))))) {
        // mov qword [slot], simm32 — writes exactly 8 bytes like the handler.
        op_rm(0, true, {0xC7}, 0, RBX, slot(a));
        i32le(u32(imm));
      } else {
        movabs(RAX, imm);
        store64(a, RAX);
      }
      return true;
    case ROp::kConstV128:
      load_pool(X0, u32(imm));
      storeaps(a, X0);
      return true;
    case ROp::kSelect: {
      // if (r[c].i32 == 0) A = B
      op_rm(0, false, {0x83}, 7, RBX, slot(c));  // cmp dword [c], 0
      b1(0);
      u32 skip = jcc8(CC_NE);
      slot_copy(a, b);
      label8(skip);
      return true;
    }
    case ROp::kGlobalGet:
      op_rm(0, false, {0x0F, 0x28}, X0, R12, i64(imm) * 16);  // movaps
      storeaps(a, X0);
      return true;
    case ROp::kGlobalSet:
      loadaps(X0, a);
      op_rm(0, false, {0x0F, 0x29}, X0, R12, i64(imm) * 16);
      return true;

    case ROp::kBr:
      jmp32(u32(imm));
      return true;
    case ROp::kBrIf:
      op_rm(0, false, {0x83}, 7, RBX, slot(a));  // cmp dword [a], 0
      b1(0);
      jcc32(CC_NE, u32(imm));
      return true;
    case ROp::kBrIfNot:
      op_rm(0, false, {0x83}, 7, RBX, slot(a));
      b1(0);
      jcc32(CC_E, u32(imm));
      return true;
    case ROp::kBrTable: {
      const auto& targets = f.br_pool[imm];
      load32(RAX, a);
      b1(0xB9);  // mov ecx, size-1
      i32le(u32(targets.size() - 1));
      op_rr(0, false, {0x39}, RCX, RAX);        // cmp eax, ecx
      op_rr(0, false, {0x0F, 0x43}, RAX, RCX);  // cmovae eax, ecx (clamp)
      {                                          // lea rdx, [rip + table]
        rex_if(true, RDX, 0);
        b1(0x8D);
        b1(u8(0x00 | ((RDX & 7) << 3) | 5));
        table_fixes.push_back({u32(code.size()), u32(imm)});
        i32le(0);
      }
      // movsxd rax, dword [rdx + rax*4]
      bs({0x48, 0x63, 0x04, 0x82});
      bs({0x48, 0x01, 0xD0});  // add rax, rdx
      bs({0xFF, 0xE0});        // jmp rax
      return true;
    }
    case ROp::kReturn:
      slot_copy(0, a);
      epilogue();
      return true;
    case ROp::kReturnVoid:
      epilogue();
      return true;
    case ROp::kCall:
      op_rr(0, true, {0x89}, R14, RDI);  // mov rdi, r14
      b1(0xBE);                          // mov esi, fidx
      i32le(u32(imm));
      op_rm(0, true, {0x8D}, RDX, RBX, slot(a));  // lea rdx, [argbase]
      call_helper(JitHelperId::kCall);
      reload_mem();
      return true;
    case ROp::kCallIndirect:
      op_rr(0, true, {0x89}, R14, RDI);
      b1(0xBE);  // mov esi, type_imm
      i32le(u32(imm));
      op_rm(0, true, {0x8D}, RDX, RBX, slot(a));
      b1(0xB9);  // mov ecx, argc
      i32le(b);
      call_helper(JitHelperId::kCallIndirect);
      reload_mem();
      return true;
    case ROp::kUnreachable:
      call_helper(JitHelperId::kTrapUnreachable);
      return true;

    case ROp::kMemorySize:
      op_rr(0, true, {0x89}, R15, RAX);  // mov rax, r15
      shift_imm(true, 5, RAX, 16);       // shr rax, 16 (bytes -> pages)
      store32(a, RAX);
      return true;
    case ROp::kMemoryGrow:
      op_rr(0, true, {0x89}, R14, RDI);
      op_rm(0, true, {0x8D}, RSI, RBX, slot(a));  // lea rsi, [slot a]
      call_helper(JitHelperId::kMemoryGrow);
      reload_mem();
      return true;
    case ROp::kMemoryCopy:
      op_rr(0, true, {0x89}, R14, RDI);
      load32(RSI, a);
      load32(RDX, b);
      load32(RCX, c);
      call_helper(JitHelperId::kMemoryCopy);
      return true;
    case ROp::kMemoryFill:
      op_rr(0, true, {0x89}, R14, RDI);
      load32(RSI, a);
      load32(RDX, b);
      load32(RCX, c);
      call_helper(JitHelperId::kMemoryFill);
      return true;

    // --- checked loads ---
    case ROp::kI32Load:
      load_mem(false, {0x8B}, 4, false);
      return true;
    case ROp::kI64Load:
      load_mem(true, {0x8B}, 8, true);
      return true;
    case ROp::kF32Load:
      checked_addr(b, imm, 4);
      op_mem(0xF3, false, {0x0F, 0x10}, X0);
      storess(a, X0);
      return true;
    case ROp::kF64Load:
      checked_addr(b, imm, 8);
      op_mem(0xF2, false, {0x0F, 0x10}, X0);
      storesd(a, X0);
      return true;
    case ROp::kI32Load8S:
      load_mem(false, {0x0F, 0xBE}, 1, false);
      return true;
    case ROp::kI32Load8U:
      load_mem(false, {0x0F, 0xB6}, 1, false);
      return true;
    case ROp::kI32Load16S:
      load_mem(false, {0x0F, 0xBF}, 2, false);
      return true;
    case ROp::kI32Load16U:
      load_mem(false, {0x0F, 0xB7}, 2, false);
      return true;
    case ROp::kI64Load8S:
      load_mem(true, {0x0F, 0xBE}, 1, true);
      return true;
    case ROp::kI64Load8U:
      load_mem(false, {0x0F, 0xB6}, 1, true);  // 32-bit movzx zero-extends
      return true;
    case ROp::kI64Load16S:
      load_mem(true, {0x0F, 0xBF}, 2, true);
      return true;
    case ROp::kI64Load16U:
      load_mem(false, {0x0F, 0xB7}, 2, true);
      return true;
    case ROp::kI64Load32S:
      load_mem(true, {0x63}, 4, true);  // movsxd
      return true;
    case ROp::kI64Load32U:
      load_mem(false, {0x8B}, 4, true);
      return true;
    case ROp::kV128Load:
      checked_addr(b, imm, 16);
      op_mem(0, false, {0x0F, 0x10}, X0);  // movups
      storeaps(a, X0);
      return true;
    case ROp::kV128Load32Splat:
      checked_addr(b, imm, 4);
      op_mem(0x66, false, {0x0F, 0x6E}, X0);  // movd
      bs({0x66, 0x0F, 0x70, 0xC0, 0x00});     // pshufd x0, x0, 0
      storeaps(a, X0);
      return true;
    case ROp::kV128Load64Splat:
      checked_addr(b, imm, 8);
      op_mem(0xF3, false, {0x0F, 0x7E}, X0);  // movq
      bs({0x66, 0x0F, 0x6C, 0xC0});           // punpcklqdq x0, x0
      storeaps(a, X0);
      return true;

    // --- checked stores ---
    case ROp::kI32Store:
      store_mem(0, false, {0x89}, 4, false);
      return true;
    case ROp::kI64Store:
      store_mem(0, true, {0x89}, 8, true);
      return true;
    case ROp::kF32Store:
      checked_addr(a, imm, 4);
      loadss(X0, b);
      op_mem(0xF3, false, {0x0F, 0x11}, X0);
      return true;
    case ROp::kF64Store:
      checked_addr(a, imm, 8);
      loadsd(X0, b);
      op_mem(0xF2, false, {0x0F, 0x11}, X0);
      return true;
    case ROp::kI32Store8:
    case ROp::kI64Store8:
      store_mem(0, false, {0x88}, 1, false);  // mov [mem], cl
      return true;
    case ROp::kI32Store16:
    case ROp::kI64Store16:
      store_mem(0x66, false, {0x89}, 2, false);
      return true;
    case ROp::kI64Store32:
      store_mem(0, false, {0x89}, 4, false);
      return true;
    case ROp::kV128Store:
      checked_addr(a, imm, 16);
      loadaps(X0, b);
      op_mem(0, false, {0x0F, 0x11}, X0);  // movups
      return true;

    // --- integer compares ---
    case ROp::kI32Eqz:
    case ROp::kI64Eqz:
      op_rm(0, in.op == ROp::kI64Eqz, {0x83}, 7, RBX, slot(b));  // cmp [b], 0
      b1(0);
      setcc_store(CC_E);
      return true;
    case ROp::kI32Eq: int_cmp(false, CC_E); return true;
    case ROp::kI32Ne: int_cmp(false, CC_NE); return true;
    case ROp::kI32LtS: int_cmp(false, CC_L); return true;
    case ROp::kI32LtU: int_cmp(false, CC_B); return true;
    case ROp::kI32GtS: int_cmp(false, CC_G); return true;
    case ROp::kI32GtU: int_cmp(false, CC_A); return true;
    case ROp::kI32LeS: int_cmp(false, CC_LE); return true;
    case ROp::kI32LeU: int_cmp(false, CC_BE); return true;
    case ROp::kI32GeS: int_cmp(false, CC_GE); return true;
    case ROp::kI32GeU: int_cmp(false, CC_AE); return true;
    case ROp::kI64Eq: int_cmp(true, CC_E); return true;
    case ROp::kI64Ne: int_cmp(true, CC_NE); return true;
    case ROp::kI64LtS: int_cmp(true, CC_L); return true;
    case ROp::kI64LtU: int_cmp(true, CC_B); return true;
    case ROp::kI64GtS: int_cmp(true, CC_G); return true;
    case ROp::kI64GtU: int_cmp(true, CC_A); return true;
    case ROp::kI64LeS: int_cmp(true, CC_LE); return true;
    case ROp::kI64LeU: int_cmp(true, CC_BE); return true;
    case ROp::kI64GeS: int_cmp(true, CC_GE); return true;
    case ROp::kI64GeU: int_cmp(true, CC_AE); return true;

    // --- float compares (x < y computed as y > x so unordered => false) ---
    case ROp::kF32Eq: f_eq_ne(false, false); return true;
    case ROp::kF32Ne: f_eq_ne(false, true); return true;
    case ROp::kF32Lt: f_ord(false, c, b, CC_A); return true;
    case ROp::kF32Gt: f_ord(false, b, c, CC_A); return true;
    case ROp::kF32Le: f_ord(false, c, b, CC_AE); return true;
    case ROp::kF32Ge: f_ord(false, b, c, CC_AE); return true;
    case ROp::kF64Eq: f_eq_ne(true, false); return true;
    case ROp::kF64Ne: f_eq_ne(true, true); return true;
    case ROp::kF64Lt: f_ord(true, c, b, CC_A); return true;
    case ROp::kF64Gt: f_ord(true, b, c, CC_A); return true;
    case ROp::kF64Le: f_ord(true, c, b, CC_AE); return true;
    case ROp::kF64Ge: f_ord(true, b, c, CC_AE); return true;

    // --- integer arithmetic ---
    case ROp::kI32Clz:
      bit_count(false, 0xBD, kJitFeatLzcnt, JitHelperId::kI32Clz);
      return true;
    case ROp::kI32Ctz:
      bit_count(false, 0xBC, kJitFeatBmi1, JitHelperId::kI32Ctz);
      return true;
    case ROp::kI32Popcnt:
      bit_count(false, 0xB8, kJitFeatPopcnt, JitHelperId::kI32Popcnt);
      return true;
    case ROp::kI64Clz:
      bit_count(true, 0xBD, kJitFeatLzcnt, JitHelperId::kI64Clz);
      return true;
    case ROp::kI64Ctz:
      bit_count(true, 0xBC, kJitFeatBmi1, JitHelperId::kI64Ctz);
      return true;
    case ROp::kI64Popcnt:
      bit_count(true, 0xB8, kJitFeatPopcnt, JitHelperId::kI64Popcnt);
      return true;
    case ROp::kI32Add: int_bin(false, {0x03}); return true;
    case ROp::kI32Sub: int_bin(false, {0x2B}); return true;
    case ROp::kI32Mul: int_bin(false, {0x0F, 0xAF}); return true;
    case ROp::kI32And: int_bin(false, {0x23}); return true;
    case ROp::kI32Or: int_bin(false, {0x0B}); return true;
    case ROp::kI32Xor: int_bin(false, {0x33}); return true;
    case ROp::kI64Add: int_bin(true, {0x03}); return true;
    case ROp::kI64Sub: int_bin(true, {0x2B}); return true;
    case ROp::kI64Mul: int_bin(true, {0x0F, 0xAF}); return true;
    case ROp::kI64And: int_bin(true, {0x23}); return true;
    case ROp::kI64Or: int_bin(true, {0x0B}); return true;
    case ROp::kI64Xor: int_bin(true, {0x33}); return true;
    case ROp::kI32DivS: bin_helper(false, JitHelperId::kI32DivS); return true;
    case ROp::kI32DivU: bin_helper(false, JitHelperId::kI32DivU); return true;
    case ROp::kI32RemS: bin_helper(false, JitHelperId::kI32RemS); return true;
    case ROp::kI32RemU: bin_helper(false, JitHelperId::kI32RemU); return true;
    case ROp::kI64DivS: bin_helper(true, JitHelperId::kI64DivS); return true;
    case ROp::kI64DivU: bin_helper(true, JitHelperId::kI64DivU); return true;
    case ROp::kI64RemS: bin_helper(true, JitHelperId::kI64RemS); return true;
    case ROp::kI64RemU: bin_helper(true, JitHelperId::kI64RemU); return true;
    case ROp::kI32Shl: int_shift(false, 4); return true;
    case ROp::kI32ShrS: int_shift(false, 7); return true;
    case ROp::kI32ShrU: int_shift(false, 5); return true;
    case ROp::kI32Rotl: int_shift(false, 0); return true;
    case ROp::kI32Rotr: int_shift(false, 1); return true;
    case ROp::kI64Shl: int_shift(true, 4); return true;
    case ROp::kI64ShrS: int_shift(true, 7); return true;
    case ROp::kI64ShrU: int_shift(true, 5); return true;
    case ROp::kI64Rotl: int_shift(true, 0); return true;
    case ROp::kI64Rotr: int_shift(true, 1); return true;

    // --- float arithmetic ---
    case ROp::kF32Abs:
      load32(RAX, b);
      b1(0x25);  // and eax, 0x7FFFFFFF
      i32le(0x7FFFFFFFu);
      store32(a, RAX);
      return true;
    case ROp::kF32Neg:
      load32(RAX, b);
      b1(0x35);  // xor eax, 0x80000000
      i32le(0x80000000u);
      store32(a, RAX);
      return true;
    case ROp::kF64Abs:
      load64(RAX, b);
      bs({0x48, 0x0F, 0xBA, 0xF0, 63});  // btr rax, 63
      store64(a, RAX);
      return true;
    case ROp::kF64Neg:
      load64(RAX, b);
      bs({0x48, 0x0F, 0xBA, 0xF8, 63});  // btc rax, 63
      store64(a, RAX);
      return true;
    case ROp::kF32Copysign:
      load32(RAX, b);
      b1(0x25);
      i32le(0x7FFFFFFFu);
      load32(RCX, c);
      bs({0x81, 0xE1});  // and ecx, 0x80000000
      i32le(0x80000000u);
      bs({0x09, 0xC8});  // or eax, ecx
      store32(a, RAX);
      return true;
    case ROp::kF64Copysign:
      load64(RAX, b);
      bs({0x48, 0x0F, 0xBA, 0xF0, 63});  // btr rax, 63
      load64(RCX, c);
      shift_imm(true, 5, RCX, 63);  // shr rcx, 63
      shift_imm(true, 4, RCX, 63);  // shl rcx, 63
      op_rr(0, true, {0x09}, RCX, RAX);  // or rax, rcx
      store64(a, RAX);
      return true;
    case ROp::kF32Sqrt:
      op_rm(0xF3, false, {0x0F, 0x51}, X0, RBX, slot(b));
      storess(a, X0);
      return true;
    case ROp::kF64Sqrt:
      op_rm(0xF2, false, {0x0F, 0x51}, X0, RBX, slot(b));
      storesd(a, X0);
      return true;
    case ROp::kF32Ceil: f_round(false, 0x0A, JitHelperId::kF32Ceil); return true;
    case ROp::kF32Floor: f_round(false, 0x09, JitHelperId::kF32Floor); return true;
    case ROp::kF32Trunc: f_round(false, 0x0B, JitHelperId::kF32Trunc); return true;
    case ROp::kF32Nearest: f_round(false, 0x08, JitHelperId::kF32Nearest); return true;
    case ROp::kF64Ceil: f_round(true, 0x0A, JitHelperId::kF64Ceil); return true;
    case ROp::kF64Floor: f_round(true, 0x09, JitHelperId::kF64Floor); return true;
    case ROp::kF64Trunc: f_round(true, 0x0B, JitHelperId::kF64Trunc); return true;
    case ROp::kF64Nearest: f_round(true, 0x08, JitHelperId::kF64Nearest); return true;
    case ROp::kF32Add: f_bin(false, 0x58); return true;
    case ROp::kF32Sub: f_bin(false, 0x5C); return true;
    case ROp::kF32Mul: f_bin(false, 0x59); return true;
    case ROp::kF32Div: f_bin(false, 0x5E); return true;
    case ROp::kF64Add: f_bin(true, 0x58); return true;
    case ROp::kF64Sub: f_bin(true, 0x5C); return true;
    case ROp::kF64Mul: f_bin(true, 0x59); return true;
    case ROp::kF64Div: f_bin(true, 0x5E); return true;
    case ROp::kF32Min: f_bin_helper(false, JitHelperId::kF32Min); return true;
    case ROp::kF32Max: f_bin_helper(false, JitHelperId::kF32Max); return true;
    case ROp::kF64Min: f_bin_helper(true, JitHelperId::kF64Min); return true;
    case ROp::kF64Max: f_bin_helper(true, JitHelperId::kF64Max); return true;

    // --- conversions ---
    case ROp::kI32WrapI64:
      load32(RAX, b);
      store32(a, RAX);
      return true;
    case ROp::kI32TruncF32S:
      trunc_helper(false, false, JitHelperId::kI32TruncF32S);
      return true;
    case ROp::kI32TruncF32U:
      trunc_helper(false, false, JitHelperId::kI32TruncF32U);
      return true;
    case ROp::kI32TruncF64S:
      trunc_helper(true, false, JitHelperId::kI32TruncF64S);
      return true;
    case ROp::kI32TruncF64U:
      trunc_helper(true, false, JitHelperId::kI32TruncF64U);
      return true;
    case ROp::kI64TruncF32S:
      trunc_helper(false, true, JitHelperId::kI64TruncF32S);
      return true;
    case ROp::kI64TruncF32U:
      trunc_helper(false, true, JitHelperId::kI64TruncF32U);
      return true;
    case ROp::kI64TruncF64S:
      trunc_helper(true, true, JitHelperId::kI64TruncF64S);
      return true;
    case ROp::kI64TruncF64U:
      trunc_helper(true, true, JitHelperId::kI64TruncF64U);
      return true;
    case ROp::kI64ExtendI32S:
      op_rm(0, true, {0x63}, RAX, RBX, slot(b));  // movsxd
      store64(a, RAX);
      return true;
    case ROp::kI64ExtendI32U:
      load32(RAX, b);  // zero-extends
      store64(a, RAX);
      return true;
    case ROp::kF32ConvertI32S:
      op_rm(0xF3, false, {0x0F, 0x2A}, X0, RBX, slot(b));  // cvtsi2ss m32
      storess(a, X0);
      return true;
    case ROp::kF32ConvertI32U:
      load32(RAX, b);
      op_rr(0xF3, true, {0x0F, 0x2A}, X0, RAX);  // cvtsi2ss x0, rax
      storess(a, X0);
      return true;
    case ROp::kF32ConvertI64S:
      op_rm(0xF3, true, {0x0F, 0x2A}, X0, RBX, slot(b));
      storess(a, X0);
      return true;
    case ROp::kF32ConvertI64U:
      load64(RDI, b);
      call_helper(JitHelperId::kF32ConvertI64U);
      storess(a, X0);
      return true;
    case ROp::kF32DemoteF64:
      op_rm(0xF2, false, {0x0F, 0x5A}, X0, RBX, slot(b));  // cvtsd2ss
      storess(a, X0);
      return true;
    case ROp::kF64ConvertI32S:
      op_rm(0xF2, false, {0x0F, 0x2A}, X0, RBX, slot(b));  // cvtsi2sd m32
      storesd(a, X0);
      return true;
    case ROp::kF64ConvertI32U:
      load32(RAX, b);
      op_rr(0xF2, true, {0x0F, 0x2A}, X0, RAX);
      storesd(a, X0);
      return true;
    case ROp::kF64ConvertI64S:
      op_rm(0xF2, true, {0x0F, 0x2A}, X0, RBX, slot(b));
      storesd(a, X0);
      return true;
    case ROp::kF64ConvertI64U:
      load64(RDI, b);
      call_helper(JitHelperId::kF64ConvertI64U);
      storesd(a, X0);
      return true;
    case ROp::kF64PromoteF32:
      op_rm(0xF3, false, {0x0F, 0x5A}, X0, RBX, slot(b));  // cvtss2sd
      storesd(a, X0);
      return true;
    case ROp::kI32Extend8S:
      op_rm(0, false, {0x0F, 0xBE}, RAX, RBX, slot(b));
      store32(a, RAX);
      return true;
    case ROp::kI32Extend16S:
      op_rm(0, false, {0x0F, 0xBF}, RAX, RBX, slot(b));
      store32(a, RAX);
      return true;
    case ROp::kI64Extend8S:
      op_rm(0, true, {0x0F, 0xBE}, RAX, RBX, slot(b));
      store64(a, RAX);
      return true;
    case ROp::kI64Extend16S:
      op_rm(0, true, {0x0F, 0xBF}, RAX, RBX, slot(b));
      store64(a, RAX);
      return true;
    case ROp::kI64Extend32S:
      op_rm(0, true, {0x63}, RAX, RBX, slot(b));
      store64(a, RAX);
      return true;

    default:
      return emit_simd_or_fused(in);
  }
}

bool Emitter::emit_simd_or_fused(const RInstr& in) {
  const u32 a = in.a, b = in.b, c = in.c, d = in.d;
  const u64 imm = in.imm;

  auto setcc_store = [&](u8 cc) {
    bs({0x0F, u8(0x90 | cc), 0xC0});
    bs({0x0F, 0xB6, 0xC0});
    store32(a, RAX);
  };
  // loadaps x0, [b]; op x0, [c]; store — the standard vector binop shape.
  auto v_bin = [&](u8 pfx, std::initializer_list<u8> ops) {
    loadaps(X0, b);
    op_rm(pfx, false, ops, X0, RBX, slot(c));
    storeaps(a, X0);
  };
  // Operand-swapped variant (pcmpgt-as-lt, pmin/pmax NaN order, pandn).
  auto v_bin_rev = [&](u8 pfx, std::initializer_list<u8> ops) {
    loadaps(X0, c);
    op_rm(pfx, false, ops, X0, RBX, slot(b));
    storeaps(a, X0);
  };
  // pcmpeq + full invert for the Ne forms.
  auto v_ne = [&](u8 eq_opc) {
    loadaps(X0, b);
    op_rm(0x66, false, {0x0F, eq_opc}, X0, RBX, slot(c));
    bs({0x66, 0x0F, 0x76, 0xC9});  // pcmpeqd x1, x1 (all ones)
    bs({0x66, 0x0F, 0xEF, 0xC1});  // pxor x0, x1
    storeaps(a, X0);
  };
  // all_true: no lane may be zero <=> pcmpeq-with-zero mask is empty.
  auto v_all_true = [&](std::initializer_list<u8> cmp_ops) {
    op_rr(0x66, false, {0x0F, 0xEF}, X0, X0);  // pxor x0, x0
    op_rm(0x66, false, cmp_ops, X0, RBX, slot(b));
    op_rr(0x66, false, {0x0F, 0xD7}, RAX, X0);  // pmovmskb eax, x0
    bs({0x85, 0xC0});                           // test eax, eax
    setcc_store(CC_E);
  };
  auto v_neg = [&](u8 psub_opc) {  // 0 - r[b], lanewise
    op_rr(0x66, false, {0x0F, 0xEF}, X0, X0);
    op_rm(0x66, false, {0x0F, psub_opc}, X0, RBX, slot(b));
    storeaps(a, X0);
  };
  // Lane shift by r[c] & mask through xmm1 (hardware uses the full 64-bit
  // count, so the mod-lane-width mask must be applied explicitly).
  auto v_shift = [&](u8 opc, u8 mask) {
    load32(RCX, c);
    alu_imm(false, 4, RCX, mask);              // and ecx, mask
    op_rr(0x66, false, {0x0F, 0x6E}, X1, RCX);  // movd x1, ecx
    loadaps(X0, b);
    op_rr(0x66, false, {0x0F, opc}, X0, X1);
    storeaps(a, X0);
  };
  // cmpps/cmppd xs, [ys], pred (operand order picked so unordered => false
  // matches the C++ comparison in every case).
  auto v_cmpf = [&](bool pd, u32 xs, u32 ys, u8 pred) {
    loadaps(X0, xs);
    op_rm(pd ? 0x66 : 0, false, {0x0F, 0xC2}, X0, RBX, slot(ys));
    b1(pred);
    storeaps(a, X0);
  };
  // andps/xorps with a rip-relative sign/abs mask from the pool.
  auto v_mask = [&](u8 opc, u32 pool_idx) {
    loadaps(X0, b);
    u32 at = op_rip(0, {0x0F, opc}, X0);
    pool_fixes.push_back({at, pool_idx});
    storeaps(a, X0);
  };
  // Value load/store at [r13+rax] for the indexed/raw memory families.
  enum class LK { i32, i64, f32, f64, v128 };
  auto lk_len = [](LK k) -> u32 {
    switch (k) {
      case LK::i32: case LK::f32: return 4;
      case LK::i64: case LK::f64: return 8;
      default: return 16;
    }
  };
  auto load_val = [&](LK k) {
    switch (k) {
      case LK::i32:
        op_mem(0, false, {0x8B}, RCX);
        store32(a, RCX);
        return;
      case LK::i64:
        op_mem(0, true, {0x8B}, RCX);
        store64(a, RCX);
        return;
      case LK::f32:
        op_mem(0xF3, false, {0x0F, 0x10}, X0);
        storess(a, X0);
        return;
      case LK::f64:
        op_mem(0xF2, false, {0x0F, 0x10}, X0);
        storesd(a, X0);
        return;
      case LK::v128:
        op_mem(0, false, {0x0F, 0x10}, X0);
        storeaps(a, X0);
        return;
    }
  };
  auto store_val = [&](LK k) {  // value comes from r[b]
    switch (k) {
      case LK::i32:
        load32(RCX, b);
        op_mem(0, false, {0x89}, RCX);
        return;
      case LK::i64:
        load64(RCX, b);
        op_mem(0, true, {0x89}, RCX);
        return;
      case LK::f32:
        loadss(X0, b);
        op_mem(0xF3, false, {0x0F, 0x11}, X0);
        return;
      case LK::f64:
        loadsd(X0, b);
        op_mem(0xF2, false, {0x0F, 0x11}, X0);
        return;
      case LK::v128:
        loadaps(X0, b);
        op_mem(0, false, {0x0F, 0x11}, X0);
        return;
    }
  };
  auto load_plain = [&](LK k, bool checked) {  // addr = r[b].u32 + imm
    lin_addr(b, imm);
    if (checked) bounds_check(lk_len(k));
    load_val(k);
  };
  auto store_plain = [&](LK k, bool checked) {  // addr = r[a].u32 + imm
    lin_addr(a, imm);
    if (checked) bounds_check(lk_len(k));
    store_val(k);
  };
  auto load_ix = [&](LK k, bool checked) {  // addr = IXADDR(r[b])
    ix_addr(b, c, d, imm);
    if (checked) bounds_check(lk_len(k));
    load_val(k);
  };
  auto store_ix = [&](LK k, bool checked) {  // addr = IXADDR(r[a])
    ix_addr(a, c, d, imm);
    if (checked) bounds_check(lk_len(k));
    store_val(k);
  };
  // Fused r[a] = r[c] op mem (scalar float): checked address, then
  // op x0(=C), [r13+rax] — same operand order as the handler's C-then-mem.
  auto f_load_op = [&](bool f64v, u8 opc) {
    checked_addr(b, imm, f64v ? 8 : 4);
    if (f64v) {
      loadsd(X0, c);
      op_mem(0xF2, false, {0x0F, opc}, X0);
      storesd(a, X0);
    } else {
      loadss(X0, c);
      op_mem(0xF3, false, {0x0F, opc}, X0);
      storess(a, X0);
    }
  };
  // Fused vector load+op: x0 = r[c], x1 = movups mem, op x0, x1.
  auto v_load_op = [&](u8 pfx, u8 opc) {
    checked_addr(b, imm, 16);
    loadaps(X0, c);
    op_mem(0, false, {0x0F, 0x10}, X1);
    op_rr(pfx, false, {0x0F, opc}, X0, X1);
    storeaps(a, X0);
  };
  // Fused scalar float op+store: mem[r[a]+imm] = r[b] op r[c].
  auto f_op_store = [&](bool f64v, u8 opc) {
    checked_addr(a, imm, f64v ? 8 : 4);
    if (f64v) {
      loadsd(X0, b);
      op_rm(0xF2, false, {0x0F, opc}, X0, RBX, slot(c));
      op_mem(0xF2, false, {0x0F, 0x11}, X0);
    } else {
      loadss(X0, b);
      op_rm(0xF3, false, {0x0F, opc}, X0, RBX, slot(c));
      op_mem(0xF3, false, {0x0F, 0x11}, X0);
    }
  };
  // Fused vector op+store (slot operands are 16-aligned, so the op can take
  // r[c] straight from memory).
  auto v_op_store = [&](u8 pfx, std::initializer_list<u8> ops) {
    checked_addr(a, imm, 16);
    loadaps(X0, b);
    op_rm(pfx, false, ops, X0, RBX, slot(c));
    op_mem(0, false, {0x0F, 0x11}, X0);
  };
  // BRCMP family: cmp r[a], r[b]; jcc target.
  auto br_cmp = [&](u8 cc) {
    load32(RAX, a);
    op_rm(0, false, {0x3B}, RAX, RBX, slot(b));
    jcc32(cc, u32(imm));
  };
  // SELCMP family: keep A when cmp(r[c], r[d]) holds, else A = B.
  auto sel_cmp = [&](u8 cc_true) {
    load32(RAX, c);
    op_rm(0, false, {0x3B}, RAX, RBX, slot(d));
    u32 skip = jcc8(cc_true);
    slot_copy(a, b);
    label8(skip);
  };

  switch (in.op) {
    // --- splats / lanes ---
    case ROp::kI32x4Splat:
      op_rm(0x66, false, {0x0F, 0x6E}, X0, RBX, slot(b));  // movd
      bs({0x66, 0x0F, 0x70, 0xC0, 0x00});                  // pshufd x0,x0,0
      storeaps(a, X0);
      return true;
    case ROp::kI64x2Splat:
      op_rm(0xF3, false, {0x0F, 0x7E}, X0, RBX, slot(b));  // movq
      bs({0x66, 0x0F, 0x6C, 0xC0});                        // punpcklqdq
      storeaps(a, X0);
      return true;
    case ROp::kF32x4Splat:
      loadss(X0, b);
      bs({0x0F, 0xC6, 0xC0, 0x00});  // shufps x0, x0, 0
      storeaps(a, X0);
      return true;
    case ROp::kF64x2Splat:
      loadsd(X0, b);
      bs({0x66, 0x0F, 0x14, 0xC0});  // unpcklpd x0, x0
      storeaps(a, X0);
      return true;
    case ROp::kI8x16ExtractLaneS:
      op_rm(0, false, {0x0F, 0xBE}, RAX, RBX, slot(b) + i64(imm));
      store32(a, RAX);
      return true;
    case ROp::kI8x16ExtractLaneU:
      op_rm(0, false, {0x0F, 0xB6}, RAX, RBX, slot(b) + i64(imm));
      store32(a, RAX);
      return true;
    case ROp::kI16x8ExtractLaneS:
      op_rm(0, false, {0x0F, 0xBF}, RAX, RBX, slot(b) + i64(imm) * 2);
      store32(a, RAX);
      return true;
    case ROp::kI16x8ExtractLaneU:
      op_rm(0, false, {0x0F, 0xB7}, RAX, RBX, slot(b) + i64(imm) * 2);
      store32(a, RAX);
      return true;
    case ROp::kI32x4ExtractLane:
      op_rm(0, false, {0x8B}, RAX, RBX, slot(b) + i64(imm) * 4);
      store32(a, RAX);
      return true;
    case ROp::kI64x2ExtractLane:
      op_rm(0, true, {0x8B}, RAX, RBX, slot(b) + i64(imm) * 8);
      store64(a, RAX);
      return true;
    case ROp::kF32x4ExtractLane:
      op_rm(0xF3, false, {0x0F, 0x10}, X0, RBX, slot(b) + i64(imm) * 4);
      storess(a, X0);
      return true;
    case ROp::kF64x2ExtractLane:
      op_rm(0xF2, false, {0x0F, 0x10}, X0, RBX, slot(b) + i64(imm) * 8);
      storesd(a, X0);
      return true;
    // Replace: the scalar is read before the base copy because a may alias c.
    case ROp::kI8x16ReplaceLane:
      load32(RCX, c);
      slot_copy(a, b);
      op_rm(0, false, {0x88}, RCX, RBX, slot(a) + i64(imm));
      return true;
    case ROp::kI16x8ReplaceLane:
      load32(RCX, c);
      slot_copy(a, b);
      op_rm(0x66, false, {0x89}, RCX, RBX, slot(a) + i64(imm) * 2);
      return true;
    case ROp::kI32x4ReplaceLane:
      load32(RCX, c);
      slot_copy(a, b);
      op_rm(0, false, {0x89}, RCX, RBX, slot(a) + i64(imm) * 4);
      return true;
    case ROp::kI64x2ReplaceLane:
      load64(RCX, c);
      slot_copy(a, b);
      op_rm(0, true, {0x89}, RCX, RBX, slot(a) + i64(imm) * 8);
      return true;
    case ROp::kF32x4ReplaceLane:
      loadss(X1, c);
      slot_copy(a, b);
      op_rm(0xF3, false, {0x0F, 0x11}, X1, RBX, slot(a) + i64(imm) * 4);
      return true;
    case ROp::kF64x2ReplaceLane:
      loadsd(X1, c);
      slot_copy(a, b);
      op_rm(0xF2, false, {0x0F, 0x11}, X1, RBX, slot(a) + i64(imm) * 8);
      return true;

    // --- lane compares (LtS/GtS swap operands through pcmpgt) ---
    case ROp::kI8x16Eq: v_bin(0x66, {0x0F, 0x74}); return true;
    case ROp::kI8x16Ne: v_ne(0x74); return true;
    case ROp::kI8x16LtS: v_bin_rev(0x66, {0x0F, 0x64}); return true;
    case ROp::kI8x16GtS: v_bin(0x66, {0x0F, 0x64}); return true;
    case ROp::kI16x8Eq: v_bin(0x66, {0x0F, 0x75}); return true;
    case ROp::kI16x8Ne: v_ne(0x75); return true;
    case ROp::kI16x8LtS: v_bin_rev(0x66, {0x0F, 0x65}); return true;
    case ROp::kI16x8GtS: v_bin(0x66, {0x0F, 0x65}); return true;
    case ROp::kI32x4Eq: v_bin(0x66, {0x0F, 0x76}); return true;
    case ROp::kI32x4Ne: v_ne(0x76); return true;
    case ROp::kI32x4LtS: v_bin_rev(0x66, {0x0F, 0x66}); return true;
    case ROp::kI32x4GtS: v_bin(0x66, {0x0F, 0x66}); return true;
    case ROp::kF32x4Eq: v_cmpf(false, b, c, 0); return true;
    case ROp::kF32x4Ne: v_cmpf(false, b, c, 4); return true;
    case ROp::kF32x4Lt: v_cmpf(false, b, c, 1); return true;
    case ROp::kF32x4Le: v_cmpf(false, b, c, 2); return true;
    case ROp::kF32x4Gt: v_cmpf(false, c, b, 1); return true;
    case ROp::kF32x4Ge: v_cmpf(false, c, b, 2); return true;
    case ROp::kF64x2Eq: v_cmpf(true, b, c, 0); return true;
    case ROp::kF64x2Ne: v_cmpf(true, b, c, 4); return true;
    case ROp::kF64x2Lt: v_cmpf(true, b, c, 1); return true;
    case ROp::kF64x2Le: v_cmpf(true, b, c, 2); return true;
    case ROp::kF64x2Gt: v_cmpf(true, c, b, 1); return true;
    case ROp::kF64x2Ge: v_cmpf(true, c, b, 2); return true;

    // --- bitwise ---
    case ROp::kV128Not:
      loadaps(X0, b);
      bs({0x66, 0x0F, 0x76, 0xC9});  // pcmpeqd x1, x1
      bs({0x66, 0x0F, 0xEF, 0xC1});  // pxor x0, x1
      storeaps(a, X0);
      return true;
    case ROp::kV128And: v_bin(0x66, {0x0F, 0xDB}); return true;
    case ROp::kV128AndNot: v_bin_rev(0x66, {0x0F, 0xDF}); return true;  // pandn
    case ROp::kV128Or: v_bin(0x66, {0x0F, 0xEB}); return true;
    case ROp::kV128Xor: v_bin(0x66, {0x0F, 0xEF}); return true;
    case ROp::kV128AnyTrue:
      op_rr(0x66, false, {0x0F, 0xEF}, X0, X0);               // pxor x0, x0
      op_rm(0x66, false, {0x0F, 0x74}, X0, RBX, slot(b));     // pcmpeqb
      op_rr(0x66, false, {0x0F, 0xD7}, RAX, X0);              // pmovmskb
      b1(0x3D);                                               // cmp eax, 0xFFFF
      i32le(0xFFFFu);
      setcc_store(CC_NE);
      return true;
    case ROp::kV128Bitselect:
      loadaps(X0, a);
      op_rm(0x66, false, {0x0F, 0xDB}, X0, RBX, slot(c));  // pand x0, mask
      loadaps(X1, c);
      op_rm(0x66, false, {0x0F, 0xDF}, X1, RBX, slot(b));  // pandn: ~mask & B
      op_rr(0x66, false, {0x0F, 0xEB}, X0, X1);            // por
      storeaps(a, X0);
      return true;

    // --- integer lanes ---
    case ROp::kI8x16Abs:
      op_rm(0x66, false, {0x0F, 0x38, 0x1C}, X0, RBX, slot(b));
      storeaps(a, X0);
      return true;
    case ROp::kI8x16Neg: v_neg(0xF8); return true;
    case ROp::kI8x16AllTrue: v_all_true({0x0F, 0x74}); return true;
    case ROp::kI8x16Add: v_bin(0x66, {0x0F, 0xFC}); return true;
    case ROp::kI8x16Sub: v_bin(0x66, {0x0F, 0xF8}); return true;
    case ROp::kI16x8Abs:
      op_rm(0x66, false, {0x0F, 0x38, 0x1D}, X0, RBX, slot(b));
      storeaps(a, X0);
      return true;
    case ROp::kI16x8Neg: v_neg(0xF9); return true;
    case ROp::kI16x8AllTrue: v_all_true({0x0F, 0x75}); return true;
    case ROp::kI16x8Add: v_bin(0x66, {0x0F, 0xFD}); return true;
    case ROp::kI16x8Sub: v_bin(0x66, {0x0F, 0xF9}); return true;
    case ROp::kI16x8Mul: v_bin(0x66, {0x0F, 0xD5}); return true;
    case ROp::kI32x4Abs:
      op_rm(0x66, false, {0x0F, 0x38, 0x1E}, X0, RBX, slot(b));
      storeaps(a, X0);
      return true;
    case ROp::kI32x4Neg: v_neg(0xFA); return true;
    case ROp::kI32x4AllTrue: v_all_true({0x0F, 0x76}); return true;
    case ROp::kI32x4Shl: v_shift(0xF2, 31); return true;   // pslld
    case ROp::kI32x4ShrS: v_shift(0xE2, 31); return true;  // psrad
    case ROp::kI32x4ShrU: v_shift(0xD2, 31); return true;  // psrld
    case ROp::kI32x4Add: v_bin(0x66, {0x0F, 0xFE}); return true;
    case ROp::kI32x4Sub: v_bin(0x66, {0x0F, 0xFA}); return true;
    case ROp::kI32x4Mul: v_bin(0x66, {0x0F, 0x38, 0x40}); return true;
    case ROp::kI32x4MinS: v_bin(0x66, {0x0F, 0x38, 0x39}); return true;
    case ROp::kI32x4MinU: v_bin(0x66, {0x0F, 0x38, 0x3B}); return true;
    case ROp::kI32x4MaxS: v_bin(0x66, {0x0F, 0x38, 0x3D}); return true;
    case ROp::kI32x4MaxU: v_bin(0x66, {0x0F, 0x38, 0x3F}); return true;
    case ROp::kI64x2Neg: v_neg(0xFB); return true;
    case ROp::kI64x2AllTrue: v_all_true({0x0F, 0x38, 0x29}); return true;
    case ROp::kI64x2Shl: v_shift(0xF3, 63); return true;   // psllq
    case ROp::kI64x2ShrU: v_shift(0xD3, 63); return true;  // psrlq
    case ROp::kI64x2Add: v_bin(0x66, {0x0F, 0xD4}); return true;
    case ROp::kI64x2Sub: v_bin(0x66, {0x0F, 0xFB}); return true;

    // --- float lanes ---
    case ROp::kF32x4Abs: v_mask(0x54, splat_mask32(0x7FFFFFFFu)); return true;
    case ROp::kF32x4Neg: v_mask(0x57, splat_mask32(0x80000000u)); return true;
    case ROp::kF32x4Sqrt:
      op_rm(0, false, {0x0F, 0x51}, X0, RBX, slot(b));
      storeaps(a, X0);
      return true;
    case ROp::kF32x4Add: v_bin(0, {0x0F, 0x58}); return true;
    case ROp::kF32x4Sub: v_bin(0, {0x0F, 0x5C}); return true;
    case ROp::kF32x4Mul: v_bin(0, {0x0F, 0x59}); return true;
    case ROp::kF32x4Div: v_bin(0, {0x0F, 0x5E}); return true;
    case ROp::kF32x4Pmin: v_bin_rev(0, {0x0F, 0x5D}); return true;
    case ROp::kF32x4Pmax: v_bin_rev(0, {0x0F, 0x5F}); return true;
    case ROp::kF64x2Abs:
      v_mask(0x54, splat_mask64(0x7FFFFFFFFFFFFFFFull));
      return true;
    case ROp::kF64x2Neg:
      v_mask(0x57, splat_mask64(0x8000000000000000ull));
      return true;
    case ROp::kF64x2Sqrt:
      op_rm(0x66, false, {0x0F, 0x51}, X0, RBX, slot(b));
      storeaps(a, X0);
      return true;
    case ROp::kF64x2Add: v_bin(0x66, {0x0F, 0x58}); return true;
    case ROp::kF64x2Sub: v_bin(0x66, {0x0F, 0x5C}); return true;
    case ROp::kF64x2Mul: v_bin(0x66, {0x0F, 0x59}); return true;
    case ROp::kF64x2Div: v_bin(0x66, {0x0F, 0x5E}); return true;
    case ROp::kF64x2Pmin: v_bin_rev(0x66, {0x0F, 0x5D}); return true;
    case ROp::kF64x2Pmax: v_bin_rev(0x66, {0x0F, 0x5F}); return true;

    // --- fused immediates ---
    case ROp::kI32AddImm:
      load32(RAX, b);
      alu_imm(false, 0, RAX, i64(i32(u32(imm))));
      store32(a, RAX);
      return true;
    case ROp::kI64AddImm:
      load64(RAX, b);
      if (i64(imm) >= INT32_MIN && i64(imm) <= INT32_MAX) {
        alu_imm(true, 0, RAX, i64(imm));
      } else {
        movabs(RCX, imm);
        op_rr(0, true, {0x01}, RCX, RAX);
      }
      store64(a, RAX);
      return true;
    case ROp::kI32ShlImm:
      load32(RAX, b);
      shift_imm(false, 4, RAX, u8(imm & 31));
      store32(a, RAX);
      return true;
    case ROp::kI32ShrUImm:
      load32(RAX, b);
      shift_imm(false, 5, RAX, u8(imm & 31));
      store32(a, RAX);
      return true;
    case ROp::kI32AndImm:
      load32(RAX, b);
      alu_imm(false, 4, RAX, i64(i32(u32(imm))));
      store32(a, RAX);
      return true;
    case ROp::kI32MulImm: {
      load32(RAX, b);
      i32 v = i32(u32(imm));
      if (v >= -128 && v <= 127) {
        bs({0x6B, 0xC0, u8(i8(v))});  // imul eax, eax, imm8
      } else {
        bs({0x69, 0xC0});  // imul eax, eax, imm32
        i32le(u32(v));
      }
      store32(a, RAX);
      return true;
    }

    // --- fused compare-and-branch ---
    case ROp::kBrIfI32Eq: br_cmp(CC_E); return true;
    case ROp::kBrIfI32Ne: br_cmp(CC_NE); return true;
    case ROp::kBrIfI32LtS: br_cmp(CC_L); return true;
    case ROp::kBrIfI32LtU: br_cmp(CC_B); return true;
    case ROp::kBrIfI32GtS: br_cmp(CC_G); return true;
    case ROp::kBrIfI32GtU: br_cmp(CC_A); return true;
    case ROp::kBrIfI32LeS: br_cmp(CC_LE); return true;
    case ROp::kBrIfI32LeU: br_cmp(CC_BE); return true;
    case ROp::kBrIfI32GeS: br_cmp(CC_GE); return true;
    case ROp::kBrIfI32GeU: br_cmp(CC_AE); return true;

    // --- fused multiply-add (two roundings, matching the C++ fallback) ---
    case ROp::kF64MulAdd:
      loadsd(X0, b);
      op_rm(0xF2, false, {0x0F, 0x59}, X0, RBX, slot(c));  // mulsd
      op_rm(0xF2, false, {0x0F, 0x58}, X0, RBX, slot(d));  // addsd
      storesd(a, X0);
      return true;
    case ROp::kF32MulAdd:
      loadss(X0, b);
      op_rm(0xF3, false, {0x0F, 0x59}, X0, RBX, slot(c));
      op_rm(0xF3, false, {0x0F, 0x58}, X0, RBX, slot(d));
      storess(a, X0);
      return true;

    // --- fused compare-and-select ---
    case ROp::kSelectI32Eq: sel_cmp(CC_E); return true;
    case ROp::kSelectI32Ne: sel_cmp(CC_NE); return true;
    case ROp::kSelectI32LtS: sel_cmp(CC_L); return true;
    case ROp::kSelectI32LtU: sel_cmp(CC_B); return true;
    case ROp::kSelectI32GtS: sel_cmp(CC_G); return true;
    case ROp::kSelectI32GtU: sel_cmp(CC_A); return true;
    case ROp::kSelectF64Lt: {
      loadsd(X0, d);  // y
      op_rm(0x66, false, {0x0F, 0x2E}, X0, RBX, slot(c));  // ucomisd y, x
      u32 skip = jcc8(CC_A);  // y > x <=> x < y: keep A (unordered: copy)
      slot_copy(a, b);
      label8(skip);
      return true;
    }
    case ROp::kSelectF64Gt: {
      loadsd(X0, c);  // x
      op_rm(0x66, false, {0x0F, 0x2E}, X0, RBX, slot(d));  // ucomisd x, y
      u32 skip = jcc8(CC_A);  // x > y: keep A
      slot_copy(a, b);
      label8(skip);
      return true;
    }

    // --- fused load+op ---
    case ROp::kI32LoadAdd:
      checked_addr(b, imm, 4);
      load32(RCX, c);
      op_mem(0, false, {0x03}, RCX);  // add ecx, [r13+rax]
      store32(a, RCX);
      return true;
    case ROp::kI64LoadAdd:
      checked_addr(b, imm, 8);
      load64(RCX, c);
      op_mem(0, true, {0x03}, RCX);
      store64(a, RCX);
      return true;
    case ROp::kF32LoadAdd: f_load_op(false, 0x58); return true;
    case ROp::kF64LoadAdd: f_load_op(true, 0x58); return true;
    case ROp::kF32LoadMul: f_load_op(false, 0x59); return true;
    case ROp::kF64LoadMul: f_load_op(true, 0x59); return true;
    case ROp::kI32x4LoadAdd: v_load_op(0x66, 0xFE); return true;
    case ROp::kF32x4LoadAdd: v_load_op(0, 0x58); return true;
    case ROp::kF32x4LoadMul: v_load_op(0, 0x59); return true;
    case ROp::kF64x2LoadAdd: v_load_op(0x66, 0x58); return true;
    case ROp::kF64x2LoadMul: v_load_op(0x66, 0x59); return true;

    // --- fused op+store ---
    case ROp::kI32AddStore:
      checked_addr(a, imm, 4);
      load32(RCX, b);
      op_rm(0, false, {0x03}, RCX, RBX, slot(c));  // add ecx, [c]
      op_mem(0, false, {0x89}, RCX);
      return true;
    case ROp::kF32AddStore: f_op_store(false, 0x58); return true;
    case ROp::kF64AddStore: f_op_store(true, 0x58); return true;
    case ROp::kF64MulStore: f_op_store(true, 0x59); return true;
    case ROp::kI32x4AddStore: v_op_store(0x66, {0x0F, 0xFE}); return true;
    case ROp::kF32x4AddStore: v_op_store(0, {0x0F, 0x58}); return true;
    case ROp::kF64x2AddStore: v_op_store(0x66, {0x0F, 0x58}); return true;
    case ROp::kF64x2MulStore: v_op_store(0x66, {0x0F, 0x59}); return true;

    // --- indexed addressing ---
    case ROp::kI32LoadIx: load_ix(LK::i32, true); return true;
    case ROp::kI64LoadIx: load_ix(LK::i64, true); return true;
    case ROp::kF32LoadIx: load_ix(LK::f32, true); return true;
    case ROp::kF64LoadIx: load_ix(LK::f64, true); return true;
    case ROp::kV128LoadIx: load_ix(LK::v128, true); return true;
    case ROp::kI32StoreIx: store_ix(LK::i32, true); return true;
    case ROp::kI64StoreIx: store_ix(LK::i64, true); return true;
    case ROp::kF32StoreIx: store_ix(LK::f32, true); return true;
    case ROp::kF64StoreIx: store_ix(LK::f64, true); return true;
    case ROp::kV128StoreIx: store_ix(LK::v128, true); return true;

    // --- bounds-check hoisting ---
    case ROp::kMemGuard:
      load32(RDI, b);
      load32(RSI, c);
      b1(0xBA);  // mov edx, in.d
      i32le(d);
      if (imm <= 0xFFFFFFFFull) {
        b1(0xB9);  // mov ecx, imm32 (zero-extends)
        i32le(u32(imm));
      } else {
        movabs(RCX, imm);
      }
      op_rr(0, true, {0x89}, R15, R8);  // mov r8, r15
      call_helper(JitHelperId::kMemGuard);
      store32(a, RAX);
      return true;
    case ROp::kI32LoadRaw: load_plain(LK::i32, false); return true;
    case ROp::kI64LoadRaw: load_plain(LK::i64, false); return true;
    case ROp::kF32LoadRaw: load_plain(LK::f32, false); return true;
    case ROp::kF64LoadRaw: load_plain(LK::f64, false); return true;
    case ROp::kV128LoadRaw: load_plain(LK::v128, false); return true;
    case ROp::kI32StoreRaw: store_plain(LK::i32, false); return true;
    case ROp::kI64StoreRaw: store_plain(LK::i64, false); return true;
    case ROp::kF32StoreRaw: store_plain(LK::f32, false); return true;
    case ROp::kF64StoreRaw: store_plain(LK::f64, false); return true;
    case ROp::kV128StoreRaw: store_plain(LK::v128, false); return true;
    case ROp::kI32LoadIxRaw: load_ix(LK::i32, false); return true;
    case ROp::kI64LoadIxRaw: load_ix(LK::i64, false); return true;
    case ROp::kF32LoadIxRaw: load_ix(LK::f32, false); return true;
    case ROp::kF64LoadIxRaw: load_ix(LK::f64, false); return true;
    case ROp::kV128LoadIxRaw: load_ix(LK::v128, false); return true;
    case ROp::kI32StoreIxRaw: store_ix(LK::i32, false); return true;
    case ROp::kI64StoreIxRaw: store_ix(LK::i64, false); return true;
    case ROp::kF32StoreIxRaw: store_ix(LK::f32, false); return true;
    case ROp::kF64StoreIxRaw: store_ix(LK::f64, false); return true;
    case ROp::kV128StoreIxRaw: store_ix(LK::v128, false); return true;

    default:
      return false;  // no template (jit_op_covered should have caught this)
  }
}

bool Emitter::emit_atomic(const RInstr& in) {
  const u32 a = in.a, b = in.b, c = in.c, d = in.d;
  const u64 imm = in.imm;

  // rax = bounds- and alignment-checked effective address.
  auto aaddr = [&](u32 base_slot, u32 len) {
    lin_addr(base_slot, imm);
    bounds_check(len);
    align_check(len);
  };
  // Narrow old values come back in rcx's low bytes; zero-extend in place.
  auto zext_cl = [&](u32 len) {
    if (len == 1)
      bs({0x0F, 0xB6, 0xC9});  // movzx ecx, cl
    else if (len == 2)
      bs({0x0F, 0xB7, 0xC9});  // movzx ecx, cx
  };
  auto store_rcx = [&](bool w) {
    if (w)
      store64(a, RCX);
    else
      store32(a, RCX);
  };
  auto store_rax = [&](bool w) {
    if (w)
      store64(a, RAX);
    else
      store32(a, RAX);
  };
  // Seq-cst atomic load: on x86 an aligned plain load (narrow: movzx).
  auto a_load = [&](u32 len, bool w) {
    aaddr(b, len);
    if (len == 1)
      op_mem(0, false, {0x0F, 0xB6}, RCX);
    else if (len == 2)
      op_mem(0, false, {0x0F, 0xB7}, RCX);
    else
      op_mem(0, len == 8, {0x8B}, RCX);
    store_rcx(w);
  };
  // Seq-cst atomic store: xchg (implicitly locked) supplies the trailing
  // full barrier a plain mov would lack.
  auto a_xchg_mem = [&](u32 len) {
    if (len == 1)
      op_mem(0, false, {0x86}, RCX);
    else if (len == 2)
      op_mem(0x66, false, {0x87}, RCX);
    else
      op_mem(0, len == 8, {0x87}, RCX);
  };
  auto a_store = [&](u32 len) {
    aaddr(a, len);
    if (len == 8)
      load64(RCX, b);
    else
      load32(RCX, b);
    a_xchg_mem(len);
  };
  // rmw add/sub: lock xadd (negate the operand first for sub); the old
  // value lands in rcx.
  auto a_xadd = [&](u32 len, bool w, bool negate) {
    aaddr(b, len);
    if (len == 8)
      load64(RCX, c);
    else
      load32(RCX, c);
    if (negate) {
      rex_if(len == 8, 0, RCX);
      bs({0xF7, 0xD9});  // neg (r|e)cx
    }
    b1(0xF0);  // lock
    if (len == 1)
      op_mem(0, false, {0x0F, 0xC0}, RCX);
    else if (len == 2)
      op_mem(0x66, false, {0x0F, 0xC1}, RCX);
    else
      op_mem(0, len == 8, {0x0F, 0xC1}, RCX);
    zext_cl(len);
    store_rcx(w);
  };
  auto a_xchg = [&](u32 len, bool w) {
    aaddr(b, len);
    if (len == 8)
      load64(RCX, c);
    else
      load32(RCX, c);
    a_xchg_mem(len);
    zext_cl(len);
    store_rcx(w);
  };
  // and/or/xor go through pointer helpers: the template proves the access
  // in-bounds and aligned, then hands the host address to a cmpxchg loop.
  auto a_helper_rmw = [&](u32 len, bool w, JitHelperId id) {
    aaddr(b, len);
    op_mem(0, true, {0x8D}, RDI);  // lea rdi, [r13 + rax]
    if (len == 8)
      load64(RSI, c);
    else
      load32(RSI, c);
    call_helper(id);
    store_rax(w);
  };
  auto a_cmpxchg = [&](u32 len, bool w, JitHelperId id) {
    aaddr(b, len);
    op_mem(0, true, {0x8D}, RDI);
    if (len == 8) {
      load64(RSI, c);
      load64(RDX, d);
    } else {
      load32(RSI, c);
      load32(RDX, d);
    }
    call_helper(id);
    store_rax(w);
  };

  switch (in.op) {
    // wait/notify: the helper re-checks bounds/alignment inside the guarded
    // region (it must hold the parking lock anyway), so the template only
    // computes the effective address.
    case ROp::kAtomicNotify:
      lin_addr(b, imm);
      op_rr(0, true, {0x89}, RAX, RSI);  // mov rsi, rax
      op_rr(0, true, {0x89}, R14, RDI);  // mov rdi, r14
      load32(RDX, c);
      call_helper(JitHelperId::kAtomicNotify);
      store32(a, RAX);
      return true;
    case ROp::kAtomicWait32:
    case ROp::kAtomicWait64:
      lin_addr(b, imm);
      op_rr(0, true, {0x89}, RAX, RSI);
      op_rr(0, true, {0x89}, R14, RDI);
      if (in.op == ROp::kAtomicWait64)
        load64(RDX, c);
      else
        load32(RDX, c);
      load64(RCX, d);  // timeout_ns
      call_helper(in.op == ROp::kAtomicWait64 ? JitHelperId::kAtomicWait64
                                              : JitHelperId::kAtomicWait32);
      store32(a, RAX);
      return true;
    case ROp::kAtomicFence:
      bs({0x0F, 0xAE, 0xF0});  // mfence
      return true;

    case ROp::kI32AtomicLoad: a_load(4, false); return true;
    case ROp::kI64AtomicLoad: a_load(8, true); return true;
    case ROp::kI32AtomicLoad8U: a_load(1, false); return true;
    case ROp::kI32AtomicLoad16U: a_load(2, false); return true;
    case ROp::kI64AtomicLoad8U: a_load(1, true); return true;
    case ROp::kI64AtomicLoad16U: a_load(2, true); return true;
    case ROp::kI64AtomicLoad32U: a_load(4, true); return true;

    case ROp::kI32AtomicStore: a_store(4); return true;
    case ROp::kI64AtomicStore: a_store(8); return true;
    case ROp::kI32AtomicStore8: a_store(1); return true;
    case ROp::kI32AtomicStore16: a_store(2); return true;
    case ROp::kI64AtomicStore8: a_store(1); return true;
    case ROp::kI64AtomicStore16: a_store(2); return true;
    case ROp::kI64AtomicStore32: a_store(4); return true;

    case ROp::kI32AtomicRmwAdd: a_xadd(4, false, false); return true;
    case ROp::kI64AtomicRmwAdd: a_xadd(8, true, false); return true;
    case ROp::kI32AtomicRmw8AddU: a_xadd(1, false, false); return true;
    case ROp::kI32AtomicRmw16AddU: a_xadd(2, false, false); return true;
    case ROp::kI64AtomicRmw8AddU: a_xadd(1, true, false); return true;
    case ROp::kI64AtomicRmw16AddU: a_xadd(2, true, false); return true;
    case ROp::kI64AtomicRmw32AddU: a_xadd(4, true, false); return true;

    case ROp::kI32AtomicRmwSub: a_xadd(4, false, true); return true;
    case ROp::kI64AtomicRmwSub: a_xadd(8, true, true); return true;
    case ROp::kI32AtomicRmw8SubU: a_xadd(1, false, true); return true;
    case ROp::kI32AtomicRmw16SubU: a_xadd(2, false, true); return true;
    case ROp::kI64AtomicRmw8SubU: a_xadd(1, true, true); return true;
    case ROp::kI64AtomicRmw16SubU: a_xadd(2, true, true); return true;
    case ROp::kI64AtomicRmw32SubU: a_xadd(4, true, true); return true;

    case ROp::kI32AtomicRmwAnd: a_helper_rmw(4, false, JitHelperId::kAtomicAnd32); return true;
    case ROp::kI64AtomicRmwAnd: a_helper_rmw(8, true, JitHelperId::kAtomicAnd64); return true;
    case ROp::kI32AtomicRmw8AndU: a_helper_rmw(1, false, JitHelperId::kAtomicAnd8); return true;
    case ROp::kI32AtomicRmw16AndU: a_helper_rmw(2, false, JitHelperId::kAtomicAnd16); return true;
    case ROp::kI64AtomicRmw8AndU: a_helper_rmw(1, true, JitHelperId::kAtomicAnd8); return true;
    case ROp::kI64AtomicRmw16AndU: a_helper_rmw(2, true, JitHelperId::kAtomicAnd16); return true;
    case ROp::kI64AtomicRmw32AndU: a_helper_rmw(4, true, JitHelperId::kAtomicAnd32); return true;

    case ROp::kI32AtomicRmwOr: a_helper_rmw(4, false, JitHelperId::kAtomicOr32); return true;
    case ROp::kI64AtomicRmwOr: a_helper_rmw(8, true, JitHelperId::kAtomicOr64); return true;
    case ROp::kI32AtomicRmw8OrU: a_helper_rmw(1, false, JitHelperId::kAtomicOr8); return true;
    case ROp::kI32AtomicRmw16OrU: a_helper_rmw(2, false, JitHelperId::kAtomicOr16); return true;
    case ROp::kI64AtomicRmw8OrU: a_helper_rmw(1, true, JitHelperId::kAtomicOr8); return true;
    case ROp::kI64AtomicRmw16OrU: a_helper_rmw(2, true, JitHelperId::kAtomicOr16); return true;
    case ROp::kI64AtomicRmw32OrU: a_helper_rmw(4, true, JitHelperId::kAtomicOr32); return true;

    case ROp::kI32AtomicRmwXor: a_helper_rmw(4, false, JitHelperId::kAtomicXor32); return true;
    case ROp::kI64AtomicRmwXor: a_helper_rmw(8, true, JitHelperId::kAtomicXor64); return true;
    case ROp::kI32AtomicRmw8XorU: a_helper_rmw(1, false, JitHelperId::kAtomicXor8); return true;
    case ROp::kI32AtomicRmw16XorU: a_helper_rmw(2, false, JitHelperId::kAtomicXor16); return true;
    case ROp::kI64AtomicRmw8XorU: a_helper_rmw(1, true, JitHelperId::kAtomicXor8); return true;
    case ROp::kI64AtomicRmw16XorU: a_helper_rmw(2, true, JitHelperId::kAtomicXor16); return true;
    case ROp::kI64AtomicRmw32XorU: a_helper_rmw(4, true, JitHelperId::kAtomicXor32); return true;

    case ROp::kI32AtomicRmwXchg: a_xchg(4, false); return true;
    case ROp::kI64AtomicRmwXchg: a_xchg(8, true); return true;
    case ROp::kI32AtomicRmw8XchgU: a_xchg(1, false); return true;
    case ROp::kI32AtomicRmw16XchgU: a_xchg(2, false); return true;
    case ROp::kI64AtomicRmw8XchgU: a_xchg(1, true); return true;
    case ROp::kI64AtomicRmw16XchgU: a_xchg(2, true); return true;
    case ROp::kI64AtomicRmw32XchgU: a_xchg(4, true); return true;

    case ROp::kI32AtomicRmwCmpxchg: a_cmpxchg(4, false, JitHelperId::kAtomicCmpxchg32); return true;
    case ROp::kI64AtomicRmwCmpxchg: a_cmpxchg(8, true, JitHelperId::kAtomicCmpxchg64); return true;
    case ROp::kI32AtomicRmw8CmpxchgU: a_cmpxchg(1, false, JitHelperId::kAtomicCmpxchg8); return true;
    case ROp::kI32AtomicRmw16CmpxchgU: a_cmpxchg(2, false, JitHelperId::kAtomicCmpxchg16); return true;
    case ROp::kI64AtomicRmw8CmpxchgU: a_cmpxchg(1, true, JitHelperId::kAtomicCmpxchg8); return true;
    case ROp::kI64AtomicRmw16CmpxchgU: a_cmpxchg(2, true, JitHelperId::kAtomicCmpxchg16); return true;
    case ROp::kI64AtomicRmw32CmpxchgU: a_cmpxchg(4, true, JitHelperId::kAtomicCmpxchg32); return true;

    default:
      return false;
  }
}

}  // namespace

bool jit_op_covered(ROp op, u32 cpu_features) {
  switch (op) {
    // Byte/word splats and the shuffle family need pshufb-style sequences
    // that aren't worth templating for the HPC kernels this tier targets.
    case ROp::kI8x16Splat:
    case ROp::kI16x8Splat:
    case ROp::kI8x16Shuffle:
    case ROp::kI8x16Swizzle:
    // Unsigned / non-strict lane compares need bias or min+eq sequences.
    case ROp::kI8x16LtU:
    case ROp::kI8x16GtU:
    case ROp::kI8x16LeS:
    case ROp::kI8x16LeU:
    case ROp::kI8x16GeS:
    case ROp::kI8x16GeU:
    case ROp::kI16x8LtU:
    case ROp::kI16x8GtU:
    case ROp::kI16x8LeS:
    case ROp::kI16x8LeU:
    case ROp::kI16x8GeS:
    case ROp::kI16x8GeU:
    case ROp::kI32x4LtU:
    case ROp::kI32x4GtU:
    case ROp::kI32x4LeS:
    case ROp::kI32x4LeU:
    case ROp::kI32x4GeS:
    case ROp::kI32x4GeU:
    // No single-instruction SSE forms pre-AVX512.
    case ROp::kI64x2Abs:
    case ROp::kI64x2Mul:
    case ROp::kI64x2ShrS:
    // Wasm f{32x4,64x2}.min/max propagate NaN payloads; minps/maxps don't.
    case ROp::kF32x4Min:
    case ROp::kF32x4Max:
    case ROp::kF64x2Min:
    case ROp::kF64x2Max:
    case ROp::kCount:
      return false;
    case ROp::kI8x16Abs:
    case ROp::kI16x8Abs:
    case ROp::kI32x4Abs:
      return (cpu_features & kJitFeatSsse3) != 0;  // pabsb/w/d
    case ROp::kI32x4Mul:      // pmulld
    case ROp::kI32x4MinS:     // pminsd
    case ROp::kI32x4MinU:     // pminud
    case ROp::kI32x4MaxS:     // pmaxsd
    case ROp::kI32x4MaxU:     // pmaxud
    case ROp::kI64x2AllTrue:  // pcmpeqq
      return (cpu_features & kJitFeatSse41) != 0;
    default:
      return true;
  }
}

namespace {

bool jit_is_branch(ROp op) {
  switch (op) {
    case ROp::kBr:
    case ROp::kBrIf:
    case ROp::kBrIfNot:
    case ROp::kBrIfI32Eq:
    case ROp::kBrIfI32Ne:
    case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU:
    case ROp::kBrIfI32GtS:
    case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS:
    case ROp::kBrIfI32LeU:
    case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      return true;
    default:
      return false;
  }
}

// Lane count when `op` is an extract/replace with an immediate lane index,
// else 0 (no lane validation needed).
u32 jit_lane_count(ROp op) {
  switch (op) {
    case ROp::kI8x16ExtractLaneS:
    case ROp::kI8x16ExtractLaneU:
    case ROp::kI8x16ReplaceLane:
      return 16;
    case ROp::kI16x8ExtractLaneS:
    case ROp::kI16x8ExtractLaneU:
    case ROp::kI16x8ReplaceLane:
      return 8;
    case ROp::kI32x4ExtractLane:
    case ROp::kF32x4ExtractLane:
    case ROp::kI32x4ReplaceLane:
    case ROp::kF32x4ReplaceLane:
      return 4;
    case ROp::kI64x2ExtractLane:
    case ROp::kF64x2ExtractLane:
    case ROp::kI64x2ReplaceLane:
    case ROp::kF64x2ReplaceLane:
      return 2;
    default:
      return 0;
  }
}

bool jit_is_terminator(ROp op) {
  return op == ROp::kBr || op == ROp::kReturn || op == ROp::kReturnVoid ||
         op == ROp::kUnreachable || op == ROp::kBrTable;
}

}  // namespace

std::shared_ptr<const JitBlob> jit_compile_function(const RFunc& f) {
  const size_t n = f.code.size();
  if (n == 0 || n > 1'000'000) return nullptr;
  if (!jit_is_terminator(f.code.back().op)) return nullptr;
  // Slot displacements must fit the disp32 addressing the templates use.
  if (u64(f.num_regs) * 16 > 0x7FFF0000ull) return nullptr;

  const u32 feats = jit_cpu_features();

  // Structural validation up front (mirrors threadable()): emit_instr
  // assumes every branch target, pool index, and lane immediate is in range.
  for (const RInstr& in : f.code) {
    if (!jit_op_covered(in.op, feats)) return nullptr;
    if (jit_is_branch(in.op) && in.imm >= n) return nullptr;
    if (in.op == ROp::kBrTable) {
      if (in.imm >= f.br_pool.size()) return nullptr;
      const auto& targets = f.br_pool[in.imm];
      if (targets.empty()) return nullptr;
      for (u32 t : targets)
        if (t >= n) return nullptr;
    }
    if (in.op == ROp::kConstV128 && in.imm >= f.v128_pool.size())
      return nullptr;
    if ((in.op == ROp::kGlobalGet || in.op == ROp::kGlobalSet) &&
        in.imm > 0x07FFFFFFull)
      return nullptr;
    if (u32 lanes = jit_lane_count(in.op); lanes != 0 && in.imm >= lanes)
      return nullptr;
  }

  Emitter e(f, feats);
  e.prologue();
  for (const RInstr& in : f.code) {
    e.ioff.push_back(u32(e.code.size()));
    if (!e.emit_instr(in)) return nullptr;
  }
  e.finish();

  auto blob = std::make_shared<JitBlob>();
  blob->cpu_features = feats;
  blob->layout_hash = jit_layout_hash();
  blob->code = std::move(e.code);
  blob->relocs = std::move(e.relocs);
  return blob;
}

}  // namespace mpiwasm::rt
