// RegCode dispatch-loop executor shared by the Baseline and Optimizing
// tiers (they differ only in the code they feed it).
//
// Two dispatch strategies over the same handler bodies (exec_ops.inc):
//   - direct threading: computed-goto, one indirect jump per instruction,
//     with handler addresses resolved once per RFunc at publication time
//     (prepare_rfunc) instead of per dispatch. Default on GCC/Clang.
//   - portable switch loop: always compiled, used when a body has no
//     resolved handlers, when forced via set_dispatch_force_switch(), or
//     when the build defines MPIWASM_SWITCH_DISPATCH (CMake option
//     MPIWASM_THREADED_DISPATCH=OFF), e.g. for compilers without
//     labels-as-values.
#pragma once

#include "runtime/regcode.h"
#include "runtime/value.h"

// MPIWASM_DISPATCH_THREADED: 1 when the computed-goto executor is compiled
// in. Requires the GNU labels-as-values extension; opt out with
// -DMPIWASM_SWITCH_DISPATCH.
#if !defined(MPIWASM_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define MPIWASM_DISPATCH_THREADED 1
#else
#define MPIWASM_DISPATCH_THREADED 0
#endif

namespace mpiwasm::rt {

class Instance;

/// Executes `f` with the register frame `regs` (num_regs slots; locals
/// pre-initialized, params placed by the caller). On return, the function
/// result (if any) is in regs[0].
void exec_regcode(Instance& inst, const RFunc& f, Slot* regs);

/// Resolves `f.handlers` (per-instruction direct-threading addresses).
/// Called once per function at publication time — engine compile() for the
/// static tiers, tier_up() for tiered promotions. No-op in switch-dispatch
/// builds. Leaves `handlers` empty (switch fallback) if the code fails the
/// structural sanity checks the goto loop relies on (terminator at the
/// end, all branch targets in range).
void prepare_rfunc(RFunc& f);

/// True when this build contains the computed-goto executor.
bool threaded_dispatch_compiled();

/// Bench/test hook: route every exec_regcode call through the portable
/// switch loop even when threaded handlers are resolved. Global, sticky.
void set_dispatch_force_switch(bool on);

}  // namespace mpiwasm::rt
