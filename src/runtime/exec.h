// RegCode dispatch-loop executor shared by the Baseline and Optimizing
// tiers (they differ only in the code they feed it).
#pragma once

#include "runtime/regcode.h"
#include "runtime/value.h"

namespace mpiwasm::rt {

class Instance;

/// Executes `f` with the register frame `regs` (num_regs slots; locals
/// pre-initialized, params placed by the caller). On return, the function
/// result (if any) is in regs[0].
void exec_regcode(Instance& inst, const RFunc& f, Slot* regs);

}  // namespace mpiwasm::rt
