// Baseline ("Singlepass"-analogue) compiler: one linear pass translating a
// validated Wasm function's stack machine code into RegCode.
#pragma once

#include "runtime/regcode.h"
#include "wasm/module.h"

namespace mpiwasm::rt {

/// Lowers defined function `defined_index` (0-based into Module::bodies).
/// Input must be validated; malformed input triggers InternalError.
RFunc lower_function(const wasm::Module& m, u32 defined_index);

/// Lowers every defined function.
RModule lower_module(const wasm::Module& m);

}  // namespace mpiwasm::rt
