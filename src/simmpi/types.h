// simmpi core types: datatypes, reduction ops, status, error handling, and
// the interconnect cost model.
//
// simmpi is the repository's "host MPI library" substitute (DESIGN.md §2):
// an in-process, rank-per-thread MPI-2.2 subset with eager/rendezvous
// point-to-point protocols, tag/source matching, collectives, communicator
// management, and a configurable interconnect cost model standing in for
// OmniPath / Graviton interconnects. Both the native benchmark twins and
// the MPIWasm embedder call into this same library, which is exactly the
// comparison the paper makes (native MPI app vs Wasm app over one MPI).
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

#include "support/common.h"

namespace mpiwasm::simmpi {

/// MPI basic datatypes (the set exercised by the paper's Figure 6 plus the
/// ones the benchmark kernels need).
enum class Datatype : i32 {
  kByte = 0,
  kChar = 1,
  kInt = 2,
  kFloat = 3,
  kDouble = 4,
  kLong = 5,
  kUnsigned = 6,
  kLongLong = 7,
};
constexpr i32 kNumDatatypes = 8;

size_t datatype_size(Datatype t);
const char* datatype_name(Datatype t);

enum class ReduceOp : i32 {
  kSum = 0,
  kProd = 1,
  kMax = 2,
  kMin = 3,
  kLand = 4,
  kLor = 5,
  kBand = 6,
  kBor = 7,
};
constexpr i32 kNumReduceOps = 8;

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;
/// Reserved tag for collective traffic; user tags must be >= 0.
constexpr int kCollectiveTag = -42;

/// Reserved tag space for nonblocking-collective schedules (coll_sched.h):
/// each schedule owns a stride of kIcollRounds tags derived from its
/// per-communicator sequence number, so concurrently outstanding schedules
/// on one communicator never match each other's traffic. Tags wrap after
/// kIcollSeqWindow simultaneously outstanding operations per communicator —
/// far beyond anything a real program keeps in flight.
constexpr int kIcollTagBase = -1024;
constexpr int kIcollRounds = 512;   // max p2p rounds per schedule
constexpr int kIcollSeqWindow = 2048;

/// Deadlock watchdog: a blocking MPI wait stuck this long aborts the run
/// with a diagnostic instead of hanging CI forever. Shared by the simmpi
/// internals and the embedder's request-wait loops.
constexpr std::chrono::seconds kDeadlockTimeout{120};

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  size_t bytes = 0;  // received payload size
  int count(Datatype t) const { return int(bytes / datatype_size(t)); }
};

/// MPI usage / internal errors (invalid handles, truncation, deadlock).
class MpiError : public std::runtime_error {
 public:
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on MPI_Abort; unwinds the calling rank thread.
class MpiAbort : public std::exception {
 public:
  explicit MpiAbort(int code) : code_(code) {}
  int code() const { return code_; }
  const char* what() const noexcept override { return "MPI_Abort"; }

 private:
  int code_ = 1;
};

/// MPI_IN_PLACE sentinel: passed as sendbuf (or scatter's recvbuf) to
/// request in-place collective semantics. A pointer constant, like the
/// real MPI's ((void*)1)-style definition.
inline const void* const kInPlace = reinterpret_cast<const void*>(~uintptr_t(0));
inline bool is_in_place(const void* p) { return p == kInPlace; }

/// Collective algorithm identifiers. Each collective supports a subset
/// (see coll_algos.h); kAuto defers to the size x comm-size selection
/// table. kLinear is always the reference algorithm the differential
/// tests compare against.
enum class CollAlgo : i32 {
  kAuto = 0,
  kLinear,             // naive rooted fan-in/fan-out over p2p
  kBinomial,           // binomial tree
  kDissemination,      // dissemination barrier
  kRing,               // ring exchange
  kRecursiveDoubling,  // hypercube exchange
  kRabenseifner,       // reduce-scatter + allgather allreduce
  kPairwise,           // rotated pairwise exchange
  kShm,                // shared-memory fan-in/fan-out via CollectiveContext
};

/// Per-world collective tuning: a forced algorithm per collective (kAuto
/// = size-adaptive selection) plus shared-memory fan-in knobs. Populated
/// from MPIWASM_COLL_* environment variables by from_env() so ablations
/// need no recompilation.
struct CollTuning {
  CollAlgo barrier = CollAlgo::kAuto;
  CollAlgo bcast = CollAlgo::kAuto;
  CollAlgo reduce = CollAlgo::kAuto;
  CollAlgo allreduce = CollAlgo::kAuto;
  CollAlgo gather = CollAlgo::kAuto;
  CollAlgo scatter = CollAlgo::kAuto;
  CollAlgo allgather = CollAlgo::kAuto;
  CollAlgo alltoall = CollAlgo::kAuto;
  CollAlgo reduce_scatter = CollAlgo::kAuto;
  CollAlgo scan = CollAlgo::kAuto;
  CollAlgo exscan = CollAlgo::kAuto;
  /// Master switch for the shared-memory fan-in path.
  bool enable_shm = true;
  /// Largest per-slot payload eligible for the shm path (clamped to the
  /// CollectiveContext slot size).
  size_t shm_max_bytes = 8192;

  /// Online autotuning of the kAuto selection: per (collective, size-bin,
  /// comm-size) key the first calls rotate through the candidate algorithms,
  /// an EWMA over measured timings picks a winner, and the winner is locked
  /// in. Explicit MPIWASM_COLL_<NAME> overrides always bypass it.
  bool autotune = true;
  /// Where the learned table persists between runs (empty = in-memory only;
  /// the embedder points this next to the JIT code cache).
  std::string autotune_file;

  /// Applies MPIWASM_COLL_<NAME>=<algo>, MPIWASM_COLL_SHM=0|1,
  /// MPIWASM_COLL_SHM_MAX=<bytes> and MPIWASM_COLL_AUTOTUNE=0|1 on top of
  /// `base` (defaults when omitted).
  static CollTuning from_env(CollTuning base);
  static CollTuning from_env() { return from_env(CollTuning{}); }
};

/// Interconnect cost model: deterministic spin-based per-message costs so
/// benchmark *shapes* are stable on shared CI hardware (DESIGN.md §5).
struct NetworkProfile {
  std::string name = "zero";
  u64 latency_ns = 0;          // per-message injection latency
  f64 bytes_per_ns = 0;        // bandwidth; 0 = infinite
  u64 serialize_ns_per_kib = 0;  // messaging-layer serialization overhead
  bool force_copy = false;       // models gRPC-style buffer handoff
  size_t eager_limit = 64 * 1024;
  /// Rendezvous pipeline segment size: large transfers are exposed to the
  /// receiver in chunks of this many bytes, each charged its own wire cost,
  /// so a receiver's progress engine drains the wire as data "arrives"
  /// instead of paying one big copy at the end. 0 = unsegmented (single
  /// all-at-once handoff). Overridable via MPIWASM_RNDV_CHUNK.
  size_t rendezvous_chunk = 64 * 1024;

  u64 message_cost_ns(size_t bytes) const {
    u64 cost = latency_ns;
    if (bytes_per_ns > 0) cost += u64(f64(bytes) / bytes_per_ns);
    if (serialize_ns_per_kib > 0)
      cost += serialize_ns_per_kib * (u64(bytes) / 1024 + 1);
    return cost;
  }

  /// No artificial costs; used by unit tests.
  static NetworkProfile zero();
  /// SuperMUC-NG-like: Intel OmniPath, 100 Gbit/s, ~1us MPI latency (§4.1).
  static NetworkProfile omnipath();
  /// AWS Graviton2 single node: shared-memory transport (§4.1).
  static NetworkProfile graviton2();
  /// Faasm-like distributed messaging: gRPC hops + serialization (§6).
  static NetworkProfile grpc_messaging();
};

}  // namespace mpiwasm::simmpi
