// Tree/chunk arithmetic shared by the blocking collective algorithms
// (coll_algos.cc) and their schedule twins (coll_sched.cc). One copy on
// purpose: the differential suites assume a blocking algorithm and its
// nonblocking schedule walk exactly the same tree, so a change to the
// rounding or relative-rank rules here updates both in lockstep.
#pragma once

#include <vector>

#include "support/common.h"

namespace mpiwasm::simmpi::coll {

/// Relative rank helpers for trees rooted at `root`.
inline int rel(int r, int root, int size) { return (r - root + size) % size; }
inline int unrel(int r, int root, int size) { return (r + root) % size; }

inline bool is_pof2(int n) { return n > 0 && (n & (n - 1)) == 0; }

inline int floor_pof2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Splits `count` elements into `parts` chunks (first count%parts chunks
/// get one extra element); fills element counts and offsets.
inline void chunk_counts(int count, int parts, std::vector<int>* cnts,
                         std::vector<int>* offs) {
  cnts->assign(size_t(parts), 0);
  offs->assign(size_t(parts), 0);
  int base = count / parts, extra = count % parts, off = 0;
  for (int i = 0; i < parts; ++i) {
    (*cnts)[i] = base + (i < extra ? 1 : 0);
    (*offs)[i] = off;
    off += (*cnts)[i];
  }
}

}  // namespace mpiwasm::simmpi::coll
