// Pluggable collective-algorithm registry for simmpi.
//
// Production MPIs (MPICH, Open MPI) implement every collective several
// times and pick an algorithm per call from the message size and the
// communicator size. This header gives simmpi the same structure: each
// collective names the algorithm variants it supports (algos_for), a
// selection table maps (tuning, comm size, message size) to a concrete
// variant (select), and coll::Engine holds the implementations, which
// collectives.cc dispatches to. Small messages additionally qualify for
// the shared-memory fan-in path (CollectiveContext in world.h) that
// bypasses the mailbox transport entirely.
//
// Cost-model honesty: p2p-based algorithms are charged per message by
// send_internal; the shm variants charge one NetworkProfile message cost
// per fan-in/fan-out phase (Engine::charge), so Figure 3/4 simulations
// account for every algorithm step either way.
#pragma once

#include <span>

#include "simmpi/world.h"

namespace mpiwasm::simmpi::coll {

/// The collectives with pluggable algorithms (alltoallv stays pairwise).
enum class CollOp : i32 {
  kBarrier = 0,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
  kReduceScatter,
  kScan,
  kExscan,
};
constexpr i32 kNumCollOps = 11;

const char* coll_name(CollOp c);
const char* algo_name(CollAlgo a);
/// Parses "linear", "binomial", "ring", "rdbl", "raben", "pairwise",
/// "dissem", "shm", "auto" (plus long spellings); returns false on junk.
bool algo_from_name(std::string_view name, CollAlgo* out);

/// The registered variants of a collective, kLinear first. Every entry is
/// a valid forced choice for that collective; benches and the differential
/// suite iterate this.
std::span<const CollAlgo> algos_for(CollOp c);

/// Reads the forced algorithm for `c` out of the tuning (kAuto = none).
CollAlgo forced_algo(const CollTuning& t, CollOp c);

/// A tuning that forces `algo` for collective `c` and leaves the rest on
/// auto — the ablation/bench/test building block.
CollTuning forced_tuning(CollOp c, CollAlgo algo);

/// The size-adaptive selection table. `bytes` is the per-slot payload the
/// shm path would have to hold (message size for bcast/reduce-style
/// collectives, block size for gather-style, total size for
/// reduce_scatter); `shm_ok` says whether the communicator has a
/// CollectiveContext and the payload fits a slot. `hw_threads` is the
/// core count used for the oversubscription term (0 = query the host);
/// tests pass it explicitly for machine-independent expectations. Never
/// returns kAuto.
CollAlgo select(CollOp c, const CollTuning& t, int nranks, size_t bytes,
                bool shm_ok, int hw_threads = 0);

/// Algorithm implementations. Static-only; a friend of Rank so variants
/// can use the internal (reserved-tag) p2p primitives and the per-comm
/// CollectiveContext. All methods assume comm size > 1 and pre-resolved
/// MPI_IN_PLACE arguments unless noted.
class Engine {
 public:
  Engine() = delete;

  /// Charges one interconnect message cost (shm algorithm steps).
  static void charge(Rank& r, size_t bytes);

  // --- barrier ---
  static void barrier_dissemination(Rank& r, const detail::CommData& c);
  static void barrier_linear(Rank& r, const detail::CommData& c);
  static void barrier_shm(Rank& r, const detail::CommData& c);

  // --- bcast ---
  static void bcast_linear(Rank& r, const detail::CommData& c, void* buf,
                           size_t bytes, int root);
  static void bcast_binomial(Rank& r, const detail::CommData& c, void* buf,
                             size_t bytes, int root);
  static void bcast_shm(Rank& r, const detail::CommData& c, void* buf,
                        size_t bytes, int root);

  // --- reduce (recvbuf may be null on non-root ranks) ---
  static void reduce_linear(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, int count,
                            Datatype type, ReduceOp op, int root);
  static void reduce_binomial(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf, int count,
                              Datatype type, ReduceOp op, int root);
  static void reduce_shm(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, int count,
                         Datatype type, ReduceOp op, int root);

  // --- allreduce ---
  static void allreduce_linear(Rank& r, const detail::CommData& c,
                               const void* sendbuf, void* recvbuf, int count,
                               Datatype type, ReduceOp op);
  static void allreduce_binomial(Rank& r, const detail::CommData& c,
                                 const void* sendbuf, void* recvbuf, int count,
                                 Datatype type, ReduceOp op);
  static void allreduce_rdbl(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, int count,
                             Datatype type, ReduceOp op);
  static void allreduce_ring(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, int count,
                             Datatype type, ReduceOp op);
  static void allreduce_rabenseifner(Rank& r, const detail::CommData& c,
                                     const void* sendbuf, void* recvbuf,
                                     int count, Datatype type, ReduceOp op);
  static void allreduce_shm(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, int count,
                            Datatype type, ReduceOp op);

  // --- gather/scatter (in_place: root's block already in recvbuf /
  //     root keeps its block in sendbuf) ---
  static void gather_linear(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, size_t block,
                            int root, bool in_place);
  static void gather_binomial(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf, size_t block,
                              int root, bool in_place);
  static void gather_shm(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, size_t block,
                         int root, bool in_place);
  static void scatter_linear(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, size_t block,
                             int root, bool in_place);
  static void scatter_binomial(Rank& r, const detail::CommData& c,
                               const void* sendbuf, void* recvbuf,
                               size_t block, int root, bool in_place);
  static void scatter_shm(Rank& r, const detail::CommData& c,
                          const void* sendbuf, void* recvbuf, size_t block,
                          int root, bool in_place);

  // --- allgather (in_place: own block already at recvbuf[me * block]) ---
  static void allgather_linear(Rank& r, const detail::CommData& c,
                               const void* sendbuf, void* recvbuf,
                               size_t block, bool in_place);
  static void allgather_ring(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, size_t block,
                             bool in_place);
  static void allgather_rdbl(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, size_t block,
                             bool in_place);
  static void allgather_shm(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, size_t block,
                            bool in_place);

  // --- alltoall ---
  static void alltoall_linear(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf,
                              size_t sblock, size_t rblock);
  static void alltoall_pairwise(Rank& r, const detail::CommData& c,
                                const void* sendbuf, void* recvbuf,
                                size_t sblock, size_t rblock);

  // --- reduce_scatter (sendbuf == nullptr means in-place: full input in
  //     recvbuf; the result block lands at the front of recvbuf) ---
  static void reduce_scatter_linear(Rank& r, const detail::CommData& c,
                                    const void* sendbuf, void* recvbuf,
                                    const int* recvcounts, Datatype type,
                                    ReduceOp op);
  static void reduce_scatter_pairwise(Rank& r, const detail::CommData& c,
                                      const void* sendbuf, void* recvbuf,
                                      const int* recvcounts, Datatype type,
                                      ReduceOp op);
  static void reduce_scatter_shm(Rank& r, const detail::CommData& c,
                                 const void* sendbuf, void* recvbuf,
                                 const int* recvcounts, Datatype type,
                                 ReduceOp op);

  // --- scan / exscan ---
  static void scan_linear(Rank& r, const detail::CommData& c,
                          const void* sendbuf, void* recvbuf, int count,
                          Datatype type, ReduceOp op);
  static void scan_rdbl(Rank& r, const detail::CommData& c,
                        const void* sendbuf, void* recvbuf, int count,
                        Datatype type, ReduceOp op);
  static void scan_shm(Rank& r, const detail::CommData& c,
                       const void* sendbuf, void* recvbuf, int count,
                       Datatype type, ReduceOp op);
  static void exscan_linear(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, int count,
                            Datatype type, ReduceOp op);
  static void exscan_rdbl(Rank& r, const detail::CommData& c,
                          const void* sendbuf, void* recvbuf, int count,
                          Datatype type, ReduceOp op);
  static void exscan_shm(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, int count,
                         Datatype type, ReduceOp op);
};

}  // namespace mpiwasm::simmpi::coll
