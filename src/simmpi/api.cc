#include "simmpi/api.h"

namespace mpiwasm::simmpi {

Rank& ctx() {
  Rank* r = World::current();
  if (r == nullptr)
    throw MpiError("MPI call outside a rank thread (before MPI_Init?)");
  return *r;
}

bool in_mpi_context() { return World::current() != nullptr; }

}  // namespace mpiwasm::simmpi
