// Convenience access to the calling thread's MPI context.
//
// Native benchmark twins and the embedder's host functions run on rank
// threads spawned by World::run; `ctx()` fetches the thread's Rank the way
// a real MPI library resolves its per-process state.
#pragma once

#include "simmpi/world.h"

namespace mpiwasm::simmpi {

/// The calling thread's Rank. Throws MpiError outside World::run.
Rank& ctx();

/// True when called from a rank thread.
bool in_mpi_context();

}  // namespace mpiwasm::simmpi
