#include "simmpi/reduce_ops.h"

#include <algorithm>
#include <cstring>

namespace mpiwasm::simmpi {
namespace {

template <typename T>
void apply_typed(ReduceOp op, const T* in, T* inout, int count) {
  switch (op) {
    case ReduceOp::kSum:
      for (int i = 0; i < count; ++i) inout[i] = T(inout[i] + in[i]);
      break;
    case ReduceOp::kProd:
      for (int i = 0; i < count; ++i) inout[i] = T(inout[i] * in[i]);
      break;
    case ReduceOp::kMax:
      for (int i = 0; i < count; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (int i = 0; i < count; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case ReduceOp::kLand:
      for (int i = 0; i < count; ++i)
        inout[i] = T((inout[i] != T(0)) && (in[i] != T(0)) ? 1 : 0);
      break;
    case ReduceOp::kLor:
      for (int i = 0; i < count; ++i)
        inout[i] = T((inout[i] != T(0)) || (in[i] != T(0)) ? 1 : 0);
      break;
    default:
      throw MpiError("bitwise reduction on non-integer type");
  }
}

template <typename T>
void apply_bitwise(ReduceOp op, const T* in, T* inout, int count) {
  switch (op) {
    case ReduceOp::kBand:
      for (int i = 0; i < count; ++i) inout[i] = T(inout[i] & in[i]);
      break;
    case ReduceOp::kBor:
      for (int i = 0; i < count; ++i) inout[i] = T(inout[i] | in[i]);
      break;
    default:
      apply_typed(op, in, inout, count);
      break;
  }
}

}  // namespace

void apply_reduce(ReduceOp op, Datatype t, const void* in, void* inout,
                  int count) {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kChar:
      apply_bitwise(op, static_cast<const i8*>(in), static_cast<i8*>(inout),
                    count);
      break;
    case Datatype::kInt:
      apply_bitwise(op, static_cast<const i32*>(in), static_cast<i32*>(inout),
                    count);
      break;
    case Datatype::kUnsigned:
      apply_bitwise(op, static_cast<const u32*>(in), static_cast<u32*>(inout),
                    count);
      break;
    case Datatype::kLong:
    case Datatype::kLongLong:
      apply_bitwise(op, static_cast<const i64*>(in), static_cast<i64*>(inout),
                    count);
      break;
    case Datatype::kFloat:
      apply_typed(op, static_cast<const f32*>(in), static_cast<f32*>(inout),
                  count);
      break;
    case Datatype::kDouble:
      apply_typed(op, static_cast<const f64*>(in), static_cast<f64*>(inout),
                  count);
      break;
  }
}

}  // namespace mpiwasm::simmpi
