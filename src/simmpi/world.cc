#include "simmpi/world.h"

#include <cstring>

#include "simmpi/coll_sched.h"
#include "simmpi/coll_tune.h"
#include "support/log.h"
#include "support/timing.h"
#include "support/trace.h"

namespace mpiwasm::simmpi {

namespace {

thread_local Rank* tl_current_rank = nullptr;

/// Deadlock watchdog (types.h kDeadlockTimeout; shared with mpi_host.cc).
constexpr auto kBlockTimeout = kDeadlockTimeout;

bool key_matches(const detail::RecvDesc& r, const detail::SendDesc& s) {
  return r.comm_id == s.comm_id &&
         (r.src == kAnySource || r.src == s.src_comm_rank) &&
         (r.tag == kAnyTag || r.tag == s.tag);
}


/// Finds and removes the first live posted receive matching
/// (comm_id, src, tag); null when none is posted. Caller holds box.mu.
std::shared_ptr<detail::RecvDesc> take_posted_match(detail::Mailbox& box,
                                                    i32 comm_id,
                                                    int src_comm_rank,
                                                    int tag) {
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    detail::RecvDesc& r = **it;
    if (r.done) continue;
    detail::SendDesc probe;
    probe.comm_id = comm_id;
    probe.src_comm_rank = src_comm_rank;
    probe.tag = tag;
    if (!key_matches(r, probe)) continue;
    auto found = *it;
    box.posted.erase(it);
    return found;
  }
  return nullptr;
}

/// Completes a matched receive with a single direct copy from the sender's
/// buffer. Caller holds box.mu.
void deliver_now(detail::Mailbox& box, detail::RecvDesc& r, const void* buf,
                 size_t bytes, int src_comm_rank, int tag) {
  size_t n = std::min(bytes, r.capacity);
  if (bytes > r.capacity) r.truncated = true;
  std::memcpy(r.dst, buf, n);
  r.status = Status{src_comm_rank, tag, n};
  r.done = true;
  box.cv.notify_all();
}

/// Drains every matched pipelined send: copies the segments whose wire
/// deadline has passed into the paired receive and completes fully-arrived
/// transfers. Caller holds box.mu; cheap when nothing new is visible.
void pump_pipelines(detail::Mailbox& box) {
  bool completed_any = false;
  for (auto it = box.draining.begin(); it != box.draining.end();) {
    detail::SendDesc& s = **it;
    detail::RecvDesc& r = *s.sink;
    size_t avail = s.bytes;
    if (s.seg_ns > 0) {
      const u64 segs = (now_ns() - s.posted_ns) / s.seg_ns;
      avail = size_t(std::min<u64>(s.bytes, segs * u64(s.chunk)));
    }
    const size_t limit = std::min(avail, r.capacity);
    if (limit > s.copied) {
      MW_TRACE_INSTANT("rndv", "rndv.segment", "drained", i64(limit - s.copied),
                       "total", i64(s.bytes));
      std::memcpy(r.dst + s.copied, s.payload + s.copied, limit - s.copied);
      s.copied = limit;
    }
    if (avail >= s.bytes) {
      if (s.bytes > r.capacity) r.truncated = true;
      r.status = Status{s.src_comm_rank, s.tag, std::min(s.bytes, r.capacity)};
      r.done = true;
      s.completed = true;
      it = box.draining.erase(it);
      completed_any = true;
    } else {
      ++it;
    }
  }
  if (completed_any) box.cv.notify_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// CollectiveContext
// ---------------------------------------------------------------------------

CollectiveContext::CollectiveContext(int nranks)
    : nranks_(nranks), slots_(size_t(nranks)) {}

void CollectiveContext::barrier_wait(World& world) {
  // Central-counter barrier with an epoch acting as the reversed sense:
  // the last arriver resets the counter, then publishes a new epoch with
  // release ordering. The acq_rel RMW chain on arrived_ plus the acquire
  // load of epoch_ makes every pre-barrier slot write happen-before every
  // post-barrier slot read.
  const u32 my_epoch = epoch_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == nranks_) {
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    return;
  }
  const u64 deadline =
      now_ns() + u64(std::chrono::nanoseconds(kBlockTimeout).count());
  // Short bounded spin for the multicore fast path, then yield every
  // iteration: with more ranks than cores the epoch can only advance once
  // the other rank threads get scheduled, so burning a quantum is pure
  // loss.
  u32 spins = 0;
  while (epoch_.load(std::memory_order_acquire) == my_epoch) {
    if (++spins >= 256) {
      if (world.aborting()) throw MpiAbort(-1);
      if ((spins & 0x3FF) == 0 && now_ns() > deadline)
        throw MpiError("shm barrier timed out (deadlock?)");
      // A peer may be unable to reach this barrier until our outstanding
      // nonblocking-collective schedules advance.
      if (Rank* r = World::current()) r->progress();
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int size, NetworkProfile profile, CollTuning coll)
    : size_(size), profile_(std::move(profile)), coll_(std::move(coll)) {
  MW_CHECK(size >= 1, "world size must be >= 1");
  boxes_.reserve(size_);
  for (int i = 0; i < size_; ++i)
    boxes_.push_back(std::make_unique<detail::Mailbox>());
  if (coll_.autotune) {
    tuner_ = std::make_unique<coll::Autotuner>(coll::Autotuner::host_signature(
        int(std::thread::hardware_concurrency()), profile_.name, size_));
    if (!coll_.autotune_file.empty()) tuner_->load(coll_.autotune_file);
  }
}

World::~World() {
  // Persist freshly locked winners so the next run starts tuned.
  if (tuner_ != nullptr && tuner_->dirty() && !coll_.autotune_file.empty())
    tuner_->save(coll_.autotune_file);
}

i32 World::alloc_comm_ids(i32 n) { return next_comm_id_.fetch_add(n); }

std::shared_ptr<CollectiveContext> World::attach_coll(i32 comm_id,
                                                      int nranks) {
  // No context when the shm path is off or sized out of existence — the
  // slots (nranks x 8 KiB per communicator) would be pure waste.
  if (!coll_.enable_shm || coll_.shm_max_bytes == 0) return nullptr;
  std::lock_guard<std::mutex> lock(coll_mu_);
  CollEntry& e = coll_ctxs_[comm_id];
  if (e.ctx == nullptr) e.ctx = std::make_shared<CollectiveContext>(nranks);
  MW_CHECK(e.ctx->nranks() == nranks, "coll context size mismatch");
  ++e.attached;
  return e.ctx;
}

void World::release_coll(i32 comm_id) {
  std::lock_guard<std::mutex> lock(coll_mu_);
  auto it = coll_ctxs_.find(comm_id);
  if (it == coll_ctxs_.end()) return;
  if (--it->second.attached <= 0) coll_ctxs_.erase(it);
}

std::shared_ptr<IcollShmGroup> World::attach_icoll_group(i32 comm_id, i64 seq,
                                                         int nranks,
                                                         size_t slot_bytes) {
  std::lock_guard<std::mutex> lock(icoll_mu_);
  IcollEntry& e = icoll_groups_[{comm_id, seq}];
  if (e.group == nullptr)
    e.group = std::make_shared<IcollShmGroup>(nranks, slot_bytes);
  MW_CHECK(e.group->nranks() == nranks, "icoll group size mismatch");
  ++e.attached;
  return e.group;
}

void World::release_icoll_group(i32 comm_id, i64 seq) {
  std::lock_guard<std::mutex> lock(icoll_mu_);
  auto it = icoll_groups_.find({comm_id, seq});
  if (it == icoll_groups_.end()) return;
  if (--it->second.attached <= 0) icoll_groups_.erase(it);
}

void World::request_abort(int code) {
  abort_flag_ = true;
  abort_code_ = code;
  for (auto& b : boxes_) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->cv.notify_all();
  }
}

Rank* World::current() { return tl_current_rank; }

void World::bind_current(Rank* rank) { tl_current_rank = rank; }

void World::run(const std::function<void(Rank&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      Rank rank(this, r);
      tl_current_rank = &rank;
      try {
        fn(rank);
      } catch (const MpiAbort&) {
        // request_abort was already called; peers are unblocking.
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that might be waiting on this rank forever.
        request_abort(-1);
      }
      tl_current_rank = nullptr;
    });
  }
  for (auto& t : threads) t.join();
  // Reset for potential reuse of the world object.
  bool aborted = abort_flag_.exchange(false);
  for (int r = 0; r < size_; ++r) {
    if (errors[r]) std::rethrow_exception(errors[r]);
  }
  if (aborted)
    throw MpiError("MPI_Abort called with code " +
                   std::to_string(abort_code_.load()));
}

// ---------------------------------------------------------------------------
// Rank: construction & communicators
// ---------------------------------------------------------------------------

Rank::Rank(World* world, int world_rank)
    : world_(world), world_rank_(world_rank) {
  detail::CommData w;
  w.id = kCommWorld;
  w.world_ranks.resize(world->size());
  for (int i = 0; i < world->size(); ++i) w.world_ranks[i] = i;
  w.my_comm_rank = world_rank;
  w.coll = world->attach_coll(kCommWorld, world->size());
  comms_[kCommWorld] = std::move(w);
}

Rank::~Rank() {
  // Worlds may be reused across run() calls; hand back every shm context
  // attachment so contexts of freed communicators do not accumulate.
  for (auto& [id, data] : comms_) {
    if (data.coll != nullptr) world_->release_coll(id);
  }
}

const detail::CommData& Rank::comm_data(Comm comm) const {
  // Shared lock protects the map structure only; node stability keeps the
  // returned reference valid while other guest threads dup/split.
  std::shared_lock<std::shared_mutex> lock(comms_mu_);
  auto it = comms_.find(comm);
  if (it == comms_.end() || it->second.my_comm_rank < 0)
    throw MpiError("invalid communicator handle " + std::to_string(comm));
  return it->second;
}

detail::CommData& Rank::comm_data_mut(Comm comm) {
  return const_cast<detail::CommData&>(comm_data(comm));
}

int Rank::rank(Comm comm) const { return comm_data(comm).my_comm_rank; }
int Rank::size(Comm comm) const {
  return int(comm_data(comm).world_ranks.size());
}

f64 Rank::wtime() const { return now_seconds(); }

void Rank::abort(int code, Comm) {
  MW_WARN("rank " << world_rank_ << " called MPI_Abort(" << code << ")");
  world_->request_abort(code);
  throw MpiAbort(code);
}

void Rank::check_user_tag(int tag) const {
  if (tag < 0 && tag != kAnyTag)
    throw MpiError("user tags must be non-negative (got " +
                   std::to_string(tag) + ")");
}

// ---------------------------------------------------------------------------
// Nonblocking-collective progress engine
// ---------------------------------------------------------------------------

bool Rank::icoll_progress() {
  if (icoll_count_.load(std::memory_order_relaxed) == 0) return false;
  // A sibling guest thread already progressing on this rank's behalf makes
  // a second concurrent pass pure contention: skip instead of blocking.
  // (Recursive mutex: the same thread re-acquires during its own pass.)
  std::unique_lock<std::recursive_mutex> guard(icoll_mu_, std::try_to_lock);
  if (!guard.owns_lock()) return false;
  // Same-thread reentrancy: schedule steps poll p2p requests through
  // test(), which itself hooks progress — without the flag that would
  // recurse.
  if (icoll_in_progress_ || icoll_active_.empty()) return false;
  icoll_in_progress_ = true;
  bool advanced = false;
  try {
    for (auto it = icoll_active_.begin(); it != icoll_active_.end();) {
      const int before = (*it)->remaining();
      if ((*it)->progress(*this)) {
        it = icoll_active_.erase(it);
        icoll_count_.fetch_sub(1, std::memory_order_relaxed);
        advanced = true;
      } else {
        advanced = advanced || (*it)->remaining() != before;
        ++it;
      }
    }
  } catch (...) {
    icoll_in_progress_ = false;
    throw;
  }
  icoll_in_progress_ = false;
  if (advanced)
    MW_TRACE_INSTANT("sched", "progress.wake", "active",
                     i64(icoll_active_.size()));
  return advanced;
}

void Rank::progress() { icoll_progress(); }

void Rank::poll_with_progress(const std::function<bool()>& pred,
                              const char* what) {
  const u64 deadline =
      now_ns() + u64(std::chrono::nanoseconds(kBlockTimeout).count());
  int idle = 0;
  while (true) {
    if (icoll_progress()) idle = 0;
    if (pred()) return;
    if (world_->aborting()) throw MpiAbort(-1);
    if (now_ns() > deadline)
      throw MpiError(std::string(what) + " timed out (deadlock?)");
    // When a pass makes no headway the missing ingredient is a peer
    // thread getting CPU time. yield() is ~0.2us and actually runs the
    // peer on an oversubscribed host, so stay in the yield phase for a
    // long stretch; sleep_for() rounds up to the kernel's timer slack
    // (~50us+ even for a 1us request), which would dwarf a small
    // collective's entire latency. Only a genuinely idle wait — hundreds
    // of fruitless passes — drops into a real sleep to cap CPU burn.
    if (++idle < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

Request Rank::start_icoll(std::shared_ptr<coll::Schedule> sched) {
  Request req;
  req.kind_ = Request::Kind::kColl;
  req.coll = sched;
  {
    std::lock_guard<std::recursive_mutex> guard(icoll_mu_);
    icoll_active_.push_back(std::move(sched));
    icoll_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // Kick the first wave (post initial sends/receives) so peers can match
  // and the wire-time deadlines start running before the caller computes.
  icoll_progress();
  return req;
}

template <typename Pred>
bool Rank::wait_with_progress(detail::Mailbox& box,
                              std::unique_lock<std::mutex>& lock, Pred pred) {
  const u64 deadline =
      now_ns() + u64(std::chrono::nanoseconds(kBlockTimeout).count());
  while (!pred()) {
    if (now_ns() > deadline) return false;
    if (icoll_count_.load(std::memory_order_relaxed) == 0 &&
        box.draining.empty()) {
      // Nothing to poll: a peer's notify is the only wake source. Pipelined
      // sends matched while we sleep wake us via the draining clause so we
      // fall through into the polling branch below. With multiple guest
      // threads per rank a sibling may initiate a nonblocking collective
      // while we sleep (its start does not notify our mailbox cv), so the
      // wait is bounded to a ~1ms quantum to re-check icoll_count_.
      box.cv.wait_for(lock,
                      world_->threaded()
                          ? std::chrono::nanoseconds(std::chrono::milliseconds(1))
                          : std::chrono::nanoseconds(kBlockTimeout),
                      [&] { return pred() || !box.draining.empty(); });
      continue;
    }
    // Pipelined segments become visible by wire-time alone — poll them.
    if (!box.draining.empty()) pump_pipelines(box);
    if (pred()) return true;
    // Drive outstanding schedules without holding our box lock (their
    // steps lock mailboxes, including this one).
    lock.unlock();
    icoll_progress();
    lock.lock();
    if (pred()) return true;
    // Segments become visible by wall-clock alone, so bound the sleep by
    // the earliest pending segment deadline; a peer's notify still wakes
    // us sooner.
    auto quantum = std::chrono::microseconds(200);
    if (!box.draining.empty()) {
      u64 next = u64(-1);
      for (const auto& d : box.draining)
        if (d->seg_ns > 0 && d->chunk > 0)
          next = std::min(
              next, d->posted_ns + (d->copied / d->chunk + 1) * d->seg_ns);
      const u64 t = now_ns();
      if (next <= t) continue;  // a segment is already due: pump again
      if (next != u64(-1)) {
        // cv timed waits round up to the kernel timer slack (~50us+), so
        // a near deadline is better met by a yielding spin: wake on time,
        // pump, and let peers run meanwhile.
        if (next - t < 150'000) {
          lock.unlock();
          spin_for_ns(next - t);
          lock.lock();
          continue;
        }
        quantum = std::min(
            quantum, std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::nanoseconds(next - t)) +
                         std::chrono::microseconds(1));
      }
    }
    box.cv.wait_for(lock, quantum, pred);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Rank::send_internal(const void* buf, size_t bytes, int dest, int tag,
                         const detail::CommData& c) {
  if (dest < 0 || dest >= int(c.world_ranks.size()))
    throw MpiError("send: destination rank out of range");
  const NetworkProfile& prof = world_->profile();
  // Model wire time at injection (deterministic spin; DESIGN.md §5).
  spin_for_ns(prof.message_cost_ns(bytes));

  detail::Mailbox& box = world_->box(c.world_ranks[dest]);
  std::unique_lock<std::mutex> lock(box.mu);

  // Try to match an already-posted receive (fast path: copy straight from
  // the sender's buffer into the receiver's buffer — single copy).
  if (auto r = take_posted_match(box, c.id, c.my_comm_rank, tag)) {
    deliver_now(box, *r, buf, bytes, c.my_comm_rank, tag);
    return;
  }

  auto desc = std::make_shared<detail::SendDesc>();
  desc->comm_id = c.id;
  desc->src_comm_rank = c.my_comm_rank;
  desc->tag = tag;
  desc->bytes = bytes;
  if (bytes <= prof.eager_limit || prof.force_copy) {
    desc->eager = true;
    desc->eager_buf.assign(static_cast<const u8*>(buf),
                           static_cast<const u8*>(buf) + bytes);
    box.unexpected.push_back(std::move(desc));
    box.cv.notify_all();
    return;  // eager send completes locally
  }
  // Rendezvous: park the sender's buffer pointer and wait for the receiver
  // to complete the single copy.
  desc->eager = false;
  desc->payload = static_cast<const u8*>(buf);
  box.unexpected.push_back(desc);
  box.cv.notify_all();
  bool ok = wait_with_progress(box, lock, [&] {
    return desc->completed || world_->aborting();
  });
  if (world_->aborting()) throw MpiAbort(-1);
  if (!ok)
    throw MpiError("send: rendezvous timed out (deadlock?) from rank " +
                   std::to_string(c.my_comm_rank) + " tag " +
                   std::to_string(tag));
}

Status Rank::recv_internal(void* buf, size_t bytes, int source, int tag,
                           const detail::CommData& c) {
  if (source != kAnySource &&
      (source < 0 || source >= int(c.world_ranks.size())))
    throw MpiError("recv: source rank out of range");
  detail::Mailbox& box = world_->box(world_rank_);
  std::unique_lock<std::mutex> lock(box.mu);

  auto try_match = [&]() -> std::shared_ptr<detail::SendDesc> {
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      detail::SendDesc& s = **it;
      if (s.comm_id != c.id) continue;
      if (source != kAnySource && s.src_comm_rank != source) continue;
      if (tag != kAnyTag && s.tag != tag) continue;
      auto found = *it;
      box.unexpected.erase(it);
      return found;
    }
    return nullptr;
  };

  std::shared_ptr<detail::SendDesc> s = try_match();
  if (s == nullptr) {
    // Post the receive and block until a sender completes it.
    auto desc = std::make_shared<detail::RecvDesc>();
    desc->comm_id = c.id;
    desc->src = source;
    desc->tag = tag;
    desc->dst = static_cast<u8*>(buf);
    desc->capacity = bytes;
    box.posted.push_back(desc);
    bool ok = wait_with_progress(box, lock, [&] {
      return desc->done || world_->aborting();
    });
    if (world_->aborting()) throw MpiAbort(-1);
    if (!ok)
      throw MpiError("recv: timed out (deadlock?) at rank " +
                     std::to_string(c.my_comm_rank) + " source " +
                     std::to_string(source) + " tag " + std::to_string(tag));
    if (desc->truncated)
      throw MpiError("recv: message truncated (buffer too small)");
    return desc->status;
  }

  // Matched an unexpected send.
  size_t n = std::min(s->bytes, bytes);
  if (s->bytes > bytes) throw MpiError("recv: message truncated");
  if (s->seg_ns > 0) {
    // Pipelined rendezvous: pair up and drain segments as their wire
    // deadlines pass (all may already be visible if the send is old).
    auto desc = std::make_shared<detail::RecvDesc>();
    desc->comm_id = c.id;
    desc->src = source;
    desc->tag = tag;
    desc->dst = static_cast<u8*>(buf);
    desc->capacity = bytes;
    s->sink = desc;
    box.draining.push_back(s);
    pump_pipelines(box);
    if (!desc->done) {
      bool ok = wait_with_progress(box, lock, [&] {
        return desc->done || world_->aborting();
      });
      if (world_->aborting()) throw MpiAbort(-1);
      if (!ok)
        throw MpiError("recv: pipelined rendezvous timed out (deadlock?)");
    }
    return desc->status;
  }
  if (s->eager) {
    std::memcpy(buf, s->eager_buf.data(), n);
  } else {
    std::memcpy(buf, s->payload, n);
    s->completed = true;
    box.cv.notify_all();  // wake the rendezvous sender
  }
  return Status{s->src_comm_rank, s->tag, n};
}

void Rank::send(const void* buf, int count, Datatype type, int dest, int tag,
                Comm comm) {
  check_user_tag(tag);
  if (count < 0) throw MpiError("send: negative count");
  maybe_icoll_progress();
  const detail::CommData& c = comm_data(comm);
  send_internal(buf, size_t(count) * datatype_size(type), dest, tag, c);
}

Status Rank::recv(void* buf, int count, Datatype type, int source, int tag,
                  Comm comm) {
  if (tag < 0 && tag != kAnyTag) throw MpiError("recv: invalid tag");
  if (count < 0) throw MpiError("recv: negative count");
  maybe_icoll_progress();
  const detail::CommData& c = comm_data(comm);
  return recv_internal(buf, size_t(count) * datatype_size(type), source, tag, c);
}

Request Rank::isend(const void* buf, int count, Datatype type, int dest,
                    int tag, Comm comm) {
  check_user_tag(tag);
  maybe_icoll_progress();
  const detail::CommData& c = comm_data(comm);
  return isend_internal(buf, size_t(count) * datatype_size(type), dest, tag, c,
                        /*charge_wire=*/true);
}

bool Rank::sched_send_pipelined(size_t bytes) const {
  // Mirror the blocking path's eager/rendezvous boundary: at or below the
  // eager limit a schedule send stays a buffered fire-and-forget copy (the
  // sender's step completes immediately, which keeps mid-size rounds
  // asynchronous); above it the transfer streams from the sender's buffer
  // in rendezvous_chunk segments with per-segment wire deadlines.
  const NetworkProfile& prof = world_->profile();
  return !prof.force_copy && bytes > prof.eager_limit;
}

Request Rank::isend_internal(const void* buf, size_t bytes, int dest, int tag,
                             const detail::CommData& c, bool charge_wire) {
  if (dest < 0 || dest >= int(c.world_ranks.size()))
    throw MpiError("isend: destination rank out of range");
  const NetworkProfile& prof = world_->profile();
  if (charge_wire) spin_for_ns(prof.message_cost_ns(bytes));
  // Schedule sends (wire cost deferred to a deadline) above the eager
  // threshold stream straight from the sender's buffer in rendezvous_chunk
  // segments: one copy instead of a staging copy plus a delivery copy, and
  // the receiver's progress engine drains segments as their per-segment
  // wire deadlines pass instead of paying one big copy at the end.
  const bool pipelined = !charge_wire && sched_send_pipelined(bytes);

  detail::Mailbox& box = world_->box(c.world_ranks[dest]);
  std::unique_lock<std::mutex> lock(box.mu);

  // Match a posted receive immediately if possible.
  auto posted = take_posted_match(box, c.id, c.my_comm_rank, tag);
  if (posted != nullptr && !pipelined) {
    deliver_now(box, *posted, buf, bytes, c.my_comm_rank, tag);
    return Request{};  // already complete (kind None == trivially done)
  }

  auto desc = std::make_shared<detail::SendDesc>();
  desc->comm_id = c.id;
  desc->src_comm_rank = c.my_comm_rank;
  desc->tag = tag;
  desc->bytes = bytes;
  Request req;
  req.kind_ = Request::Kind::kSend;
  req.box = &box;
  req.send = desc;
  if (pipelined) {
    desc->eager = false;
    desc->payload = static_cast<const u8*>(buf);
    desc->chunk = prof.rendezvous_chunk > 0
                      ? std::min(prof.rendezvous_chunk, bytes)
                      : bytes;
    desc->seg_ns = prof.message_cost_ns(desc->chunk);
    desc->posted_ns = now_ns();
    if (posted != nullptr) {
      desc->sink = std::move(posted);
      box.draining.push_back(desc);
      pump_pipelines(box);  // zero-cost profiles complete immediately
    } else {
      box.unexpected.push_back(desc);
    }
    box.cv.notify_all();
    return req;
  }
  if (bytes <= prof.eager_limit || prof.force_copy) {
    desc->eager = true;
    desc->eager_buf.assign(static_cast<const u8*>(buf),
                           static_cast<const u8*>(buf) + bytes);
    desc->completed = true;  // buffered: sender side is done
    box.unexpected.push_back(std::move(desc));
    box.cv.notify_all();
    // A buffered send is complete the moment the staging copy exists, so
    // hand back a trivially-complete request: every later test()/wait()
    // short-circuits without touching the destination mailbox lock (the
    // schedule engine polls its send steps on every progress pass).
    return Request{};
  }
  desc->eager = false;
  desc->payload = static_cast<const u8*>(buf);
  box.unexpected.push_back(desc);
  box.cv.notify_all();
  return req;
}

Request Rank::irecv(void* buf, int count, Datatype type, int source, int tag,
                    Comm comm) {
  if (tag < 0 && tag != kAnyTag) throw MpiError("irecv: invalid tag");
  maybe_icoll_progress();
  const detail::CommData& c = comm_data(comm);
  return irecv_internal(buf, size_t(count) * datatype_size(type), source, tag,
                        c);
}

Request Rank::irecv_internal(void* buf, size_t bytes, int source, int tag,
                             const detail::CommData& c) {
  detail::Mailbox& box = world_->box(world_rank_);
  std::unique_lock<std::mutex> lock(box.mu);

  auto desc = std::make_shared<detail::RecvDesc>();
  desc->comm_id = c.id;
  desc->src = source;
  desc->tag = tag;
  desc->dst = static_cast<u8*>(buf);
  desc->capacity = bytes;

  // Check the unexpected queue first (message may already be here).
  bool paired = false;
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    detail::SendDesc& s = **it;
    if (s.comm_id != c.id) continue;
    if (source != kAnySource && s.src_comm_rank != source) continue;
    if (tag != kAnyTag && s.tag != tag) continue;
    size_t n = std::min(s.bytes, bytes);
    if (s.bytes > bytes) throw MpiError("irecv: message truncated");
    if (s.seg_ns > 0) {
      // Pipelined rendezvous: pair up; test/wait pump the remaining
      // segments as their wire deadlines pass.
      auto found = *it;
      box.unexpected.erase(it);
      found->sink = desc;
      box.draining.push_back(std::move(found));
      paired = true;
      pump_pipelines(box);
      box.cv.notify_all();
      break;
    }
    if (s.eager) {
      std::memcpy(buf, s.eager_buf.data(), n);
    } else {
      std::memcpy(buf, s.payload, n);
      s.completed = true;
    }
    desc->status = Status{s.src_comm_rank, s.tag, n};
    desc->done = true;
    box.unexpected.erase(it);
    box.cv.notify_all();
    break;
  }
  if (!desc->done && !paired) box.posted.push_back(desc);

  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.recv = desc;
  req.box = &box;
  return req;
}

Status Rank::wait(Request& req) {
  Status status;
  if (!req.valid()) return status;  // trivially complete request
  if (req.kind_ == Request::Kind::kColl) {
    // Drive the progress engine (all outstanding schedules, not just this
    // one — peers may need our share of a sibling collective first).
    poll_with_progress([&] { return req.coll->done(); },
                       "wait: nonblocking collective");
    req = Request{};
    return status;  // collective requests carry an empty status
  }
  detail::Mailbox& box = *req.box;
  std::unique_lock<std::mutex> lock(box.mu);
  if (req.kind_ == Request::Kind::kRecv) {
    bool ok = wait_with_progress(box, lock, [&] {
      return req.recv->done || world_->aborting();
    });
    if (world_->aborting()) throw MpiAbort(-1);
    if (!ok) throw MpiError("wait: recv timed out (deadlock?)");
    if (req.recv->truncated) throw MpiError("wait: message truncated");
    status = req.recv->status;
  } else {
    bool ok = wait_with_progress(box, lock, [&] {
      return req.send->completed || world_->aborting();
    });
    if (world_->aborting()) throw MpiAbort(-1);
    if (!ok) throw MpiError("wait: send timed out (deadlock?)");
  }
  req = Request{};
  return status;
}

bool Rank::test(Request& req, Status* status) {
  // Progress outstanding schedules regardless of this request's kind: a
  // poll loop over pure-p2p requests must still serve this rank's share of
  // any in-flight collective (no-op while already inside icoll_progress).
  maybe_icoll_progress();
  if (!req.valid()) return true;
  if (req.kind_ == Request::Kind::kColl) {
    if (!req.coll->done()) return false;
    if (status != nullptr) *status = Status{};
    req = Request{};
    return true;
  }
  detail::Mailbox& box = *req.box;
  std::lock_guard<std::mutex> lock(box.mu);
  if (!box.draining.empty()) pump_pipelines(box);
  bool done = req.kind_ == Request::Kind::kRecv ? req.recv->done
                                                : req.send->completed;
  if (done) {
    if (req.kind_ == Request::Kind::kRecv && status != nullptr)
      *status = req.recv->status;
    req = Request{};
  }
  return done;
}

bool Rank::test_nonblocking(Request& req) {
  if (!req.valid()) return true;
  detail::Mailbox& box = *req.box;
  std::unique_lock<std::mutex> lock(box.mu, std::try_to_lock);
  if (!lock.owns_lock()) return false;  // contended: the owner is pumping
  if (!box.draining.empty()) pump_pipelines(box);
  const bool done = req.kind_ == Request::Kind::kRecv ? req.recv->done
                                                      : req.send->completed;
  if (done) req = Request{};
  return done;
}

void Rank::waitall(std::span<Request> reqs) {
  for (Request& r : reqs) wait(r);
}

int Rank::waitany(std::span<Request> reqs, Status* status) {
  int completed = -1;
  bool any_active = false;
  auto scan = [&] {
    any_active = false;
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      any_active = true;
      Status st;
      if (test(reqs[i], &st)) {
        if (status != nullptr) *status = st;
        completed = int(i);
        return true;
      }
    }
    return !any_active;  // all inactive: done, index stays -1
  };
  poll_with_progress(scan, "waitany");
  return completed;
}

bool Rank::request_get_status(Request& req, Status* status) {
  maybe_icoll_progress();
  if (!req.valid()) {
    if (status != nullptr) *status = Status{};
    return true;
  }
  if (req.kind_ == Request::Kind::kColl) {
    if (!req.coll->done()) return false;
    if (status != nullptr) *status = Status{};
    return true;
  }
  detail::Mailbox& box = *req.box;
  std::lock_guard<std::mutex> lock(box.mu);
  if (!box.draining.empty()) pump_pipelines(box);
  bool done = req.kind_ == Request::Kind::kRecv ? req.recv->done
                                                : req.send->completed;
  if (done && req.kind_ == Request::Kind::kRecv && status != nullptr)
    *status = req.recv->status;
  return done;
}

bool Rank::testall(std::span<Request> reqs, Status* statuses) {
  maybe_icoll_progress();
  // MPI_Testall semantics: deallocate either every request or none.
  for (Request& r : reqs)
    if (!request_get_status(r, nullptr)) return false;
  for (size_t i = 0; i < reqs.size(); ++i) {
    Status st;
    test(reqs[i], &st);  // completes immediately; resets the request
    if (statuses != nullptr) statuses[i] = st;
  }
  return true;
}

Status Rank::sendrecv(const void* sendbuf, int sendcount, Datatype sendtype,
                      int dest, int sendtag, void* recvbuf, int recvcount,
                      Datatype recvtype, int source, int recvtag, Comm comm) {
  Request r = irecv(recvbuf, recvcount, recvtype, source, recvtag, comm);
  send(sendbuf, sendcount, sendtype, dest, sendtag, comm);
  return wait(r);
}

bool Rank::iprobe(int source, int tag, Comm comm, Status* status) {
  maybe_icoll_progress();
  const detail::CommData& c = comm_data(comm);
  detail::Mailbox& box = world_->box(world_rank_);
  std::lock_guard<std::mutex> lock(box.mu);
  for (const auto& s : box.unexpected) {
    if (s->comm_id != c.id) continue;
    if (source != kAnySource && s->src_comm_rank != source) continue;
    if (tag != kAnyTag && s->tag != tag) continue;
    if (status != nullptr) *status = Status{s->src_comm_rank, s->tag, s->bytes};
    return true;
  }
  return false;
}

}  // namespace mpiwasm::simmpi
