// simmpi execution core: World (the "mpirun"), Rank (per-thread MPI
// context), mailboxes with tag/source matching, eager/rendezvous p2p, and
// nonblocking requests. Collectives are layered on top in collectives.cc.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "simmpi/types.h"

namespace mpiwasm::simmpi {

class World;
class Rank;
class CollectiveContext;
namespace coll {
class Autotuner;
class Engine;
class Schedule;
}  // namespace coll

/// Communicator handle (dense id). kCommWorld is always valid.
using Comm = i32;
constexpr Comm kCommWorld = 0;
constexpr Comm kCommNull = -1;
/// comm_split color for ranks excluded from the new communicator.
constexpr int kUndefined = -9999;

namespace detail {

struct RecvDesc;

struct SendDesc {
  i32 comm_id = 0;
  int src_comm_rank = 0;
  int tag = 0;
  const u8* payload = nullptr;   // rendezvous: sender-owned buffer
  std::vector<u8> eager_buf;     // eager: library-owned copy
  size_t bytes = 0;
  bool eager = true;
  bool completed = false;        // rendezvous: receiver copied the payload

  // --- Segmented pipelined rendezvous (schedule sends only) --------------
  // The sender exposes the payload in `chunk`-byte segments, each becoming
  // visible `seg_ns` after the previous one (counting from `posted_ns`);
  // whoever holds the mailbox lock drains the visible-but-uncopied prefix
  // into the paired receive. seg_ns == 0 on plain (non-pipelined) descs.
  // All fields below are guarded by the owning Mailbox::mu.
  u64 seg_ns = 0;                // per-segment wire cost; 0 = not pipelined
  u64 posted_ns = 0;             // injection timestamp (now_ns clock)
  size_t chunk = 0;              // segment size in bytes
  size_t copied = 0;             // bytes already drained into the sink
  std::shared_ptr<RecvDesc> sink;  // paired receive, set on match
};

struct RecvDesc {
  i32 comm_id = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  u8* dst = nullptr;
  size_t capacity = 0;
  bool done = false;
  bool truncated = false;
  Status status;
};

/// One per world rank: incoming traffic addressed to that rank.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<SendDesc>> unexpected;
  std::deque<std::shared_ptr<RecvDesc>> posted;
  /// Matched pipelined sends still streaming segments into their sink.
  /// Any rank that takes `mu` pumps these (pump under lock is cheap: at
  /// most a memcpy of the newly visible prefix).
  std::deque<std::shared_ptr<SendDesc>> draining;
};

struct CommData {
  i32 id = kCommNull;
  std::vector<int> world_ranks;  // comm rank -> world rank
  int my_comm_rank = -1;
  /// Shared-memory fan-in segment for this communicator (null when the
  /// shm collective path is disabled). All member ranks share one object.
  std::shared_ptr<CollectiveContext> coll;
  /// Nonblocking-collective sequence number: every rank initiates
  /// collectives on a communicator in the same order (MPI requirement), so
  /// the per-rank counters agree and derive matching schedule tag strides.
  i64 icoll_seq = 0;
  /// Autotuner call counters, keyed by (collective, size-bin, comm-size)
  /// packed key. Per-rank but consistent across the communicator by MPI's
  /// matching-call-order requirement, so every rank explores the same
  /// candidate on the same call — a rank-divergent pick would deadlock.
  std::map<u64, u64> tune_calls;
  /// Per-rank cache of final (post-exploration) autotune choices. Once the
  /// tuner hands back a non-exploring answer it is permanent for the run
  /// (winners are write-once), so later calls on this key skip the tuner's
  /// mutex entirely — with every rank of an oversubscribed host taking
  /// that mutex per collective call, the convoy costs more than a small
  /// collective itself.
  std::map<u64, CollAlgo> tune_locked;
};

}  // namespace detail

/// Per-communicator shared-memory collective state: one fixed-size fan-in
/// slot per comm rank plus a sense-reversing (epoch) barrier. Small-message
/// collectives write/read the slots directly and synchronize through the
/// barrier, bypassing the mailbox path entirely (coll_algos.cc kShm
/// variants). The barrier is lock-free: a central arrival counter whose
/// last arriver resets it and publishes a new epoch; release/acquire
/// ordering on the counter/epoch chain is what makes the slot accesses
/// data-race-free (the CI ThreadSanitizer job checks this).
class CollectiveContext {
 public:
  /// Per-rank fan-in slot capacity; payloads above this take the p2p path.
  static constexpr size_t kSlotBytes = 8192;

  explicit CollectiveContext(int nranks);

  int nranks() const { return nranks_; }
  u8* slot(int comm_rank) { return slots_[size_t(comm_rank)].data; }

  /// Blocks until all nranks ranks arrive. Throws MpiAbort if the world
  /// aborts while spinning and MpiError on the deadlock-watchdog timeout.
  void barrier_wait(World& world);

 private:
  struct alignas(64) Slot {
    u8 data[kSlotBytes];
  };
  int nranks_;
  std::atomic<int> arrived_{0};
  std::atomic<u32> epoch_{0};
  std::vector<Slot> slots_;
};

/// One outstanding nonblocking-collective's shared-memory fan-in state:
/// per-rank payload slots plus a single-use two-phase counting barrier.
/// Unlike the reusable CollectiveContext barrier, groups are created per
/// (communicator, sequence) pair by World::attach_icoll_group, so schedules
/// progressed in different orders on different ranks can never mix
/// arrivals. Slot writes happen-before the release increment of arrive();
/// readers observe them through the acquire load in arrived_all().
class IcollShmGroup {
 public:
  IcollShmGroup(int nranks, size_t slot_bytes)
      : nranks_(nranks), slots_(size_t(nranks)) {
    for (auto& s : slots_) s.resize(slot_bytes > 0 ? slot_bytes : 1);
  }
  int nranks() const { return nranks_; }
  u8* slot(int comm_rank) { return slots_[size_t(comm_rank)].data(); }
  void arrive(int phase) {
    arrived_[phase].fetch_add(1, std::memory_order_release);
  }
  bool arrived_all(int phase) const {
    return arrived_[phase].load(std::memory_order_acquire) == nranks_;
  }

 private:
  int nranks_;
  std::vector<std::vector<u8>> slots_;
  std::atomic<int> arrived_[2] = {};
};

/// Nonblocking operation handle.
class Request {
 public:
  Request() = default;
  bool valid() const { return kind_ != Kind::kNone; }

 private:
  friend class Rank;
  enum class Kind { kNone, kSend, kRecv, kColl };
  Kind kind_ = Kind::kNone;
  std::shared_ptr<detail::SendDesc> send;
  std::shared_ptr<detail::RecvDesc> recv;
  /// Deferred collective schedule (coll_sched.h); wait/test drive the
  /// per-rank progress engine until it completes.
  std::shared_ptr<coll::Schedule> coll;
  detail::Mailbox* box = nullptr;  // box whose cv signals completion
};

/// Per-rank MPI context; the API mirrors the MPI-2.2 subset MPIWasm
/// implements (paper §3.1). Historically one thread per rank; with the
/// threads proposal a rank's guest threads all funnel into the same Rank
/// (MPI_THREAD_MULTIPLE), so the p2p/collective entry points are safe for
/// concurrent same-rank callers: mailbox state is guarded by Mailbox::mu,
/// the nonblocking-collective schedule list by icoll_mu_, and the
/// communicator table by comms_mu_. Spawned guest threads must call
/// World::bind_current before their first MPI call.
class Rank {
 public:
  ~Rank();
  int rank(Comm comm = kCommWorld) const;
  int size(Comm comm = kCommWorld) const;
  int world_rank() const { return world_rank_; }

  // --- Point-to-point ------------------------------------------------------
  void send(const void* buf, int count, Datatype type, int dest, int tag,
            Comm comm = kCommWorld);
  Status recv(void* buf, int count, Datatype type, int source, int tag,
              Comm comm = kCommWorld);
  Request isend(const void* buf, int count, Datatype type, int dest, int tag,
                Comm comm = kCommWorld);
  Request irecv(void* buf, int count, Datatype type, int source, int tag,
                Comm comm = kCommWorld);
  Status wait(Request& req);
  bool test(Request& req, Status* status);
  void waitall(std::span<Request> reqs);
  /// MPI_Waitany: blocks until some request in `reqs` completes, resets it,
  /// and returns its index; -1 when every request is inactive.
  int waitany(std::span<Request> reqs, Status* status = nullptr);
  /// MPI_Testall: true (and all requests reset, statuses filled) only when
  /// every request has completed; otherwise no request is deallocated.
  bool testall(std::span<Request> reqs, Status* statuses = nullptr);
  /// MPI_Request_get_status: nondestructive completion check. Drives the
  /// nonblocking-collective progress engine but leaves `req` allocated.
  bool request_get_status(Request& req, Status* status = nullptr);
  /// MPI progress hook: advances every outstanding nonblocking-collective
  /// schedule without blocking. Compute loops overlapping a collective call
  /// this (or test()) periodically; blocking MPI calls invoke it
  /// opportunistically.
  void progress();
  Status sendrecv(const void* sendbuf, int sendcount, Datatype sendtype,
                  int dest, int sendtag, void* recvbuf, int recvcount,
                  Datatype recvtype, int source, int recvtag,
                  Comm comm = kCommWorld);
  /// Nonblocking probe-free message availability check (MPI_Iprobe).
  bool iprobe(int source, int tag, Comm comm, Status* status);

  // --- Collectives ---------------------------------------------------------
  void barrier(Comm comm = kCommWorld);
  void bcast(void* buf, int count, Datatype type, int root,
             Comm comm = kCommWorld);
  void reduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
              ReduceOp op, int root, Comm comm = kCommWorld);
  void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                 ReduceOp op, Comm comm = kCommWorld);
  void gather(const void* sendbuf, int sendcount, void* recvbuf, int recvcount,
              Datatype type, int root, Comm comm = kCommWorld);
  void scatter(const void* sendbuf, int sendcount, void* recvbuf,
               int recvcount, Datatype type, int root, Comm comm = kCommWorld);
  void allgather(const void* sendbuf, int sendcount, void* recvbuf,
                 int recvcount, Datatype type, Comm comm = kCommWorld);
  void alltoall(const void* sendbuf, int sendcount, void* recvbuf,
                int recvcount, Datatype type, Comm comm = kCommWorld);
  void alltoallv(const void* sendbuf, const int* sendcounts,
                 const int* sdispls, void* recvbuf, const int* recvcounts,
                 const int* rdispls, Datatype type, Comm comm = kCommWorld);
  /// MPI_Reduce_scatter: element-wise reduction of the concatenated send
  /// buffers, then block `i` (recvcounts[i] elements) lands on rank i.
  void reduce_scatter(const void* sendbuf, void* recvbuf,
                      const int* recvcounts, Datatype type, ReduceOp op,
                      Comm comm = kCommWorld);
  /// Inclusive prefix reduction over comm-rank order.
  void scan(const void* sendbuf, void* recvbuf, int count, Datatype type,
            ReduceOp op, Comm comm = kCommWorld);
  /// Exclusive prefix reduction; recvbuf is left untouched on rank 0.
  void exscan(const void* sendbuf, void* recvbuf, int count, Datatype type,
              ReduceOp op, Comm comm = kCommWorld);

  // --- Nonblocking collectives (schedule-based; coll_sched.h) --------------
  // Each call picks the same registry algorithm as its blocking twin via
  // coll::select, builds a resumable step schedule, and returns a request
  // that wait/test/waitall/waitany/testall drive to completion. Buffers
  // must stay valid and untouched until the request completes.
  Request ibarrier(Comm comm = kCommWorld);
  Request ibcast(void* buf, int count, Datatype type, int root,
                 Comm comm = kCommWorld);
  Request ireduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, int root, Comm comm = kCommWorld);
  Request iallreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype type, ReduceOp op, Comm comm = kCommWorld);
  Request iallgather(const void* sendbuf, int sendcount, void* recvbuf,
                     int recvcount, Datatype type, Comm comm = kCommWorld);
  Request ialltoall(const void* sendbuf, int sendcount, void* recvbuf,
                    int recvcount, Datatype type, Comm comm = kCommWorld);
  Request ireduce_scatter(const void* sendbuf, void* recvbuf,
                          const int* recvcounts, Datatype type, ReduceOp op,
                          Comm comm = kCommWorld);
  Request iscan(const void* sendbuf, void* recvbuf, int count, Datatype type,
                ReduceOp op, Comm comm = kCommWorld);
  Request iexscan(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, Comm comm = kCommWorld);

  // --- Communicator management --------------------------------------------
  Comm comm_dup(Comm comm);
  Comm comm_split(Comm comm, int color, int key);
  void comm_free(Comm comm);

  // --- Environment ---------------------------------------------------------
  f64 wtime() const;
  /// MPI_Wtick: resolution of wtime() (nanosecond-backed monotonic clock).
  f64 wtick() const { return 1e-9; }
  [[noreturn]] void abort(int code, Comm comm = kCommWorld);
  World& world() { return *world_; }

 private:
  friend class World;
  friend class coll::Engine;    // algorithm implementations (coll_algos.cc)
  friend class coll::Schedule;  // schedule steps use the internal p2p paths
  Rank(World* world, int world_rank);

  const detail::CommData& comm_data(Comm comm) const;
  detail::CommData& comm_data_mut(Comm comm);
  /// Internal p2p allowing reserved (negative) tags for collectives.
  void send_internal(const void* buf, size_t bytes, int dest, int tag,
                     const detail::CommData& c);
  Status recv_internal(void* buf, size_t bytes, int source, int tag,
                       const detail::CommData& c);
  /// Internal nonblocking send; `charge_wire` false defers the interconnect
  /// cost to the caller (schedule steps model it as a completion deadline
  /// instead of an injection spin).
  Request isend_internal(const void* buf, size_t bytes, int dest, int tag,
                         const detail::CommData& c, bool charge_wire);
  /// Internal nonblocking receive matching only `tag` (collective traffic
  /// must never match concurrently in-flight user messages).
  Request irecv_internal(void* buf, size_t bytes, int source, int tag,
                         const detail::CommData& c);
  void check_user_tag(int tag) const;
  /// Whether a schedule send of `bytes` takes the segmented pipelined
  /// rendezvous path (single copy, per-segment deadlines) instead of the
  /// buffered eager path. Schedule::advance consults this to decide whether
  /// a send step needs its own completion deadline.
  bool sched_send_pipelined(size_t bytes) const;
  /// Nonblocking variant of test() for the progress engine: if the
  /// request's mailbox lock is contended, reports "not done" instead of
  /// blocking — a progress pass must never park on a mutex whose holder is
  /// descheduled (that serializes scheduler latency into the caller's
  /// compute stream on oversubscribed hosts).
  bool test_nonblocking(Request& req);

  /// Registers a freshly built schedule, kicks its first progress pass, and
  /// wraps it into a kColl request.
  Request start_icoll(std::shared_ptr<coll::Schedule> sched);
  /// Polls `pred` while driving the progress engine until it holds; throws
  /// MpiAbort on world abort, MpiError("<what> ...") on watchdog timeout.
  /// The shared body of every schedule-aware blocking wait (wait on a
  /// collective request, waitany, the comm_free drain).
  void poll_with_progress(const std::function<bool()>& pred, const char* what);
  /// Advances every outstanding schedule once. Reentrancy-guarded (schedule
  /// steps call test() which hooks progress) and cross-thread safe: a second
  /// guest thread finding icoll_mu_ held skips the pass — the holder is
  /// already progressing on this rank's behalf.
  bool icoll_progress();  // true when any schedule step completed
  /// Cheap entry-point hook: progress only when something is outstanding.
  void maybe_icoll_progress() {
    if (icoll_count_.load(std::memory_order_relaxed) != 0) icoll_progress();
  }
  /// cv wait that keeps outstanding schedules progressing while blocked —
  /// without this, a rank stuck in a blocking call could starve a peer
  /// waiting on this rank's share of a nonblocking collective.
  template <typename Pred>
  bool wait_with_progress(detail::Mailbox& box,
                          std::unique_lock<std::mutex>& lock, Pred pred);

  World* world_ = nullptr;
  int world_rank_ = 0;
  /// Guards the communicator table's *structure* (MPI_THREAD_MULTIPLE:
  /// another guest thread of this rank may dup/split/free concurrently).
  /// std::map node stability keeps returned CommData references valid
  /// across unrelated insertions; MPI forbids using a comm concurrently
  /// with freeing it.
  mutable std::shared_mutex comms_mu_;
  std::map<Comm, detail::CommData> comms_;
  i32 next_local_comm_slot_ = 1;  // guarded by comms_mu_
  /// Outstanding nonblocking-collective schedules, in initiation order.
  /// Guarded by icoll_mu_ (recursive: progress passes re-enter through
  /// test()); icoll_count_ mirrors the size so hot entry points can skip
  /// the lock when nothing is outstanding.
  std::recursive_mutex icoll_mu_;
  std::vector<std::shared_ptr<coll::Schedule>> icoll_active_;
  std::atomic<size_t> icoll_count_{0};
  bool icoll_in_progress_ = false;  // same-thread reentrancy guard
};

/// A simulated MPI job: N rank threads over an interconnect profile.
class World {
 public:
  World(int size, NetworkProfile profile = NetworkProfile::zero(),
        CollTuning coll = CollTuning::from_env());
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }
  const NetworkProfile& profile() const { return profile_; }
  const CollTuning& coll_tuning() const { return coll_; }
  /// Online collective-selection autotuner; null when tuning.autotune is
  /// off. Loaded from / persisted to tuning.autotune_file when set.
  coll::Autotuner* tuner() const { return tuner_.get(); }

  /// Runs `fn(rank)` on `size` threads (one per rank) and joins them.
  /// The first exception thrown by any rank is rethrown here; an MPI_Abort
  /// maps to MpiError carrying the abort code.
  void run(const std::function<void(Rank&)>& fn);

  /// Current thread's Rank context (valid only inside run()).
  static Rank* current();
  /// Binds the calling thread to `rank`'s context. Guest threads spawned by
  /// the embedder (wasi thread-spawn) inherit their parent rank with this
  /// before their first MPI call; pass null on thread exit.
  static void bind_current(Rank* rank);

  /// Marks the world as having multiple guest threads per rank
  /// (MPI_THREAD_MULTIPLE). Blocking waits then use bounded cv quanta so a
  /// sibling thread's newly initiated work is picked up promptly instead of
  /// sleeping until a mailbox notify. Sticky for the world's lifetime.
  void set_threaded() { threaded_.store(true, std::memory_order_relaxed); }
  bool threaded() const { return threaded_.load(std::memory_order_relaxed); }

  // --- internals used by Rank ---------------------------------------------
  detail::Mailbox& box(int world_rank) { return *boxes_[world_rank]; }
  i32 alloc_comm_ids(i32 n);
  bool aborting() const { return abort_flag_; }
  void request_abort(int code);

  /// Attaches the calling rank to the shared CollectiveContext of comm
  /// `comm_id` (first attacher creates it with `nranks` slots). Every
  /// member rank of a communicator attaches exactly once. Returns null
  /// when the shm path is disabled.
  std::shared_ptr<CollectiveContext> attach_coll(i32 comm_id, int nranks);
  /// Releases one attachment; the context is destroyed when the last
  /// member rank releases it (comm_free).
  void release_coll(i32 comm_id);

  /// Attaches the calling rank to the single-use shared-memory group of
  /// nonblocking collective (comm_id, seq); the first attacher creates it.
  std::shared_ptr<IcollShmGroup> attach_icoll_group(i32 comm_id, i64 seq,
                                                    int nranks,
                                                    size_t slot_bytes);
  /// Releases one attachment (schedule teardown); the group is destroyed
  /// when the last member rank releases it.
  void release_icoll_group(i32 comm_id, i64 seq);

 private:
  friend class Rank;
  int size_;
  NetworkProfile profile_;
  CollTuning coll_;
  std::unique_ptr<coll::Autotuner> tuner_;
  std::vector<std::unique_ptr<detail::Mailbox>> boxes_;
  std::atomic<i32> next_comm_id_{1};
  std::atomic<bool> abort_flag_{false};
  std::atomic<int> abort_code_{0};
  std::atomic<bool> threaded_{false};

  struct CollEntry {
    std::shared_ptr<CollectiveContext> ctx;
    int attached = 0;
  };
  std::mutex coll_mu_;
  std::map<i32, CollEntry> coll_ctxs_;

  struct IcollEntry {
    std::shared_ptr<IcollShmGroup> group;
    int attached = 0;
  };
  std::mutex icoll_mu_;
  std::map<std::pair<i32, i64>, IcollEntry> icoll_groups_;
};

}  // namespace mpiwasm::simmpi
