// Collective communication algorithms over simmpi point-to-point.
//
// Algorithm choices mirror common MPI implementations: binomial trees for
// bcast/reduce, reduce+bcast allreduce, linear gather/scatter rooted
// collectives, ring allgather, and a rotated pairwise exchange for
// alltoall. All collective traffic uses the reserved kCollectiveTag; MPI
// semantics guarantee identical collective ordering on all ranks of a
// communicator, so FIFO matching per (comm, src, tag) suffices.
#include <cstring>
#include <vector>

#include "simmpi/reduce_ops.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {

namespace {

/// Relative rank helper for binomial trees rooted at `root`.
int rel(int r, int root, int size) { return (r - root + size) % size; }
int unrel(int r, int root, int size) { return (r + root) % size; }

}  // namespace

void Rank::barrier(Comm comm) {
  // Dissemination barrier: ceil(log2(n)) rounds.
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  u8 token = 1;
  for (int k = 1; k < n; k <<= 1) {
    int to = (me + k) % n;
    int from = (me - k + n) % n;
    u8 dummy;
    Request r = irecv_internal(&dummy, 1, from, kCollectiveTag, c);
    send_internal(&token, 1, to, kCollectiveTag, c);
    wait(r);
  }
}

void Rank::bcast(void* buf, int count, Datatype type, int root, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("bcast: root out of range");
  if (n == 1) return;
  size_t bytes = size_t(count) * datatype_size(type);
  int me = rel(c.my_comm_rank, root, n);

  // Binomial tree: relative rank me receives from me - 2^j where 2^j is
  // the lowest set bit, then forwards to me + 2^k for growing k.
  if (me != 0) {
    int lsb = me & -me;
    recv_internal(buf, bytes, unrel(me - lsb, root, n), kCollectiveTag, c);
  }
  int lsb = me == 0 ? (1 << 30) : (me & -me);
  for (int k = 1; k < lsb && k < n; k <<= 1) {
    if (me + k < n)
      send_internal(buf, bytes, unrel(me + k, root, n), kCollectiveTag, c);
  }
}

void Rank::reduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, int root, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("reduce: root out of range");
  size_t bytes = size_t(count) * datatype_size(type);
  int me = rel(c.my_comm_rank, root, n);

  // Local accumulation buffer (root may pass sendbuf == recvbuf semantics
  // via MPI_IN_PLACE upstream; here we always stage).
  std::vector<u8> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  std::vector<u8> incoming(bytes);

  // Binomial tree reduction: receive from children (me + 2^k), fold, then
  // send to parent (me - lsb).
  for (int k = 1; k < n; k <<= 1) {
    if ((me & k) != 0) {
      send_internal(acc.data(), bytes, unrel(me - k, root, n), kCollectiveTag, c);
      break;
    }
    if (me + k < n) {
      recv_internal(incoming.data(), bytes, unrel(me + k, root, n),
                    kCollectiveTag, c);
      apply_reduce(op, type, incoming.data(), acc.data(), count);
    }
  }
  if (me == 0 && recvbuf != nullptr) std::memcpy(recvbuf, acc.data(), bytes);
}

void Rank::allreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype type, ReduceOp op, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    std::memmove(recvbuf, sendbuf, bytes);
    return;
  }
  reduce(sendbuf, recvbuf, count, type, op, 0, comm);
  bcast(recvbuf, count, type, 0, comm);
}

void Rank::gather(const void* sendbuf, int sendcount, void* recvbuf,
                  int recvcount, Datatype type, int root, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("gather: root out of range");
  size_t send_bytes = size_t(sendcount) * datatype_size(type);
  size_t recv_bytes = size_t(recvcount) * datatype_size(type);
  if (c.my_comm_rank == root) {
    u8* out = static_cast<u8*>(recvbuf);
    std::memcpy(out + size_t(root) * recv_bytes, sendbuf, send_bytes);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      recv_internal(out + size_t(r) * recv_bytes, recv_bytes, r,
                    kCollectiveTag, c);
    }
  } else {
    send_internal(sendbuf, send_bytes, root, kCollectiveTag, c);
  }
}

void Rank::scatter(const void* sendbuf, int sendcount, void* recvbuf,
                   int recvcount, Datatype type, int root, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("scatter: root out of range");
  size_t send_bytes = size_t(sendcount) * datatype_size(type);
  size_t recv_bytes = size_t(recvcount) * datatype_size(type);
  if (c.my_comm_rank == root) {
    const u8* in = static_cast<const u8*>(sendbuf);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      send_internal(in + size_t(r) * send_bytes, send_bytes, r,
                    kCollectiveTag, c);
    }
    std::memcpy(recvbuf, in + size_t(root) * send_bytes, recv_bytes);
  } else {
    recv_internal(recvbuf, recv_bytes, root, kCollectiveTag, c);
  }
}

void Rank::allgather(const void* sendbuf, int sendcount, void* recvbuf,
                     int recvcount, Datatype type, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t block = size_t(recvcount) * datatype_size(type);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(me) * block, sendbuf,
              size_t(sendcount) * datatype_size(type));
  // Ring: in step s, send block (me - s) to the right, receive block
  // (me - s - 1) from the left.
  int right = (me + 1) % n;
  int left = (me - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    int send_block = (me - s + n) % n;
    int recv_block = (me - s - 1 + n) % n;
    Request r = irecv_internal(out + size_t(recv_block) * block, block, left,
                               kCollectiveTag, c);
    send_internal(out + size_t(send_block) * block, block, right,
                  kCollectiveTag, c);
    wait(r);
  }
}

void Rank::alltoall(const void* sendbuf, int sendcount, void* recvbuf,
                    int recvcount, Datatype type, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t sblock = size_t(sendcount) * datatype_size(type);
  size_t rblock = size_t(recvcount) * datatype_size(type);
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(me) * rblock, in + size_t(me) * sblock, sblock);
  // Rotated pairwise exchange: step s pairs me with me^s when n is a power
  // of two; otherwise with (me + s) / (me - s).
  for (int s = 1; s < n; ++s) {
    int to = (me + s) % n;
    int from = (me - s + n) % n;
    Request r = irecv_internal(out + size_t(from) * rblock, rblock, from,
                               kCollectiveTag, c);
    send_internal(in + size_t(to) * sblock, sblock, to, kCollectiveTag, c);
    wait(r);
  }
}

void Rank::alltoallv(const void* sendbuf, const int* sendcounts,
                     const int* sdispls, void* recvbuf, const int* recvcounts,
                     const int* rdispls, Datatype type, Comm comm) {
  const detail::CommData& c = comm_data(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(rdispls[me]) * esize,
              in + size_t(sdispls[me]) * esize,
              size_t(std::min(sendcounts[me], recvcounts[me])) * esize);
  for (int s = 1; s < n; ++s) {
    int to = (me + s) % n;
    int from = (me - s + n) % n;
    Request r = irecv_internal(out + size_t(rdispls[from]) * esize,
                               size_t(recvcounts[from]) * esize, from,
                               kCollectiveTag, c);
    send_internal(in + size_t(sdispls[to]) * esize,
                  size_t(sendcounts[to]) * esize, to, kCollectiveTag, c);
    wait(r);
  }
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm Rank::comm_dup(Comm comm) {
  const detail::CommData parent = comm_data(comm);
  // Rank 0 of the parent allocates the new id; everyone learns it by bcast.
  i32 new_id = 0;
  if (parent.my_comm_rank == 0) new_id = world_->alloc_comm_ids(1);
  bcast(&new_id, 1, Datatype::kInt, 0, comm);
  detail::CommData dup = parent;
  dup.id = new_id;
  comms_[new_id] = std::move(dup);
  return new_id;
}

Comm Rank::comm_split(Comm comm, int color, int key) {
  const detail::CommData parent = comm_data(comm);
  int n = int(parent.world_ranks.size());

  // Gather everyone's (color, key).
  std::vector<int> pairs(size_t(n) * 2);
  int mine[2] = {color, key};
  allgather(mine, 2, pairs.data(), 2, Datatype::kInt, comm);

  // Distinct colors in sorted order (excluding kUndefined) determine the
  // per-color communicator index.
  std::vector<int> colors;
  for (int r = 0; r < n; ++r) {
    int col = pairs[2 * r];
    if (col == kUndefined) continue;
    bool seen = false;
    for (int c2 : colors) seen = seen || c2 == col;
    if (!seen) colors.push_back(col);
  }
  std::sort(colors.begin(), colors.end());

  // Parent rank 0 allocates a contiguous id range; broadcast the base.
  i32 base = 0;
  if (parent.my_comm_rank == 0) base = world_->alloc_comm_ids(i32(colors.size()));
  bcast(&base, 1, Datatype::kInt, 0, comm);

  if (color == kUndefined) return kCommNull;

  int color_index = 0;
  for (size_t i = 0; i < colors.size(); ++i)
    if (colors[i] == color) color_index = int(i);

  // Members of my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < n; ++r)
    if (pairs[2 * r] == color) members.push_back({pairs[2 * r + 1], r});
  std::sort(members.begin(), members.end());

  detail::CommData nc;
  nc.id = base + color_index;
  nc.world_ranks.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    nc.world_ranks.push_back(parent.world_ranks[members[i].second]);
    if (members[i].second == parent.my_comm_rank) nc.my_comm_rank = int(i);
  }
  Comm id = nc.id;
  comms_[id] = std::move(nc);
  return id;
}

void Rank::comm_free(Comm comm) {
  if (comm == kCommWorld) throw MpiError("cannot free MPI_COMM_WORLD");
  auto it = comms_.find(comm);
  if (it == comms_.end()) throw MpiError("comm_free: invalid communicator");
  comms_.erase(it);
}

}  // namespace mpiwasm::simmpi
