// Collective entry points: argument validation, MPI_IN_PLACE resolution,
// and dispatch into the pluggable algorithm registry (coll_algos.h). The
// actual communication algorithms live in coll::Engine; the size x
// comm-size selection table (coll::select) picks one per call, with
// CollTuning / MPIWASM_COLL_* overrides for ablation.
#include <cstring>
#include <vector>

#include "simmpi/coll_algos.h"
#include "simmpi/coll_sched.h"
#include "simmpi/coll_tune.h"
#include "simmpi/world.h"
#include "support/timing.h"
#include "support/trace.h"

namespace mpiwasm::simmpi {

namespace {

using coll::CollOp;
using coll::Engine;

/// True when this communicator's shared-memory fan-in path can carry
/// `slot_need` bytes per slot.
bool shm_ok(const detail::CommData& c, const World& w, size_t slot_need) {
  if (c.coll == nullptr) return false;
  size_t cap = std::min(w.coll_tuning().shm_max_bytes,
                        CollectiveContext::kSlotBytes);
  return slot_need <= cap;
}

/// Collectives whose exit is synchronized across the communicator: every
/// rank leaves only once the operation is complete everywhere, so a rank's
/// per-call duration is a fair sample of the algorithm's cost — the online
/// autotuner's cost model. Rooted and prefix collectives (bcast, reduce,
/// gather, scatter, scan, exscan) let fast ranks exit early: their samples
/// mostly measure arrival skew, and their loop throughput is decided by
/// cross-call pipelining the sampler cannot see, so they stay on the
/// static table.
bool tuner_samples_valid(CollOp op) {
  switch (op) {
    case CollOp::kBarrier:
    case CollOp::kAllreduce:
    case CollOp::kAllgather:
    case CollOp::kAlltoall:
    case CollOp::kReduceScatter:
      return true;
    default:
      return false;
  }
}

/// Resolved algorithm for one collective call, autotune-aware.
struct Choice {
  CollAlgo algo = CollAlgo::kAuto;
  bool exploring = false;  // measure and record() this call
  u64 key = 0;
};

/// Picks the algorithm for one collective call. Explicit MPIWASM_COLL_*
/// overrides and autotune-off worlds use the static selection table;
/// otherwise the Autotuner rotates through the registry candidates and
/// then returns the locked winner, with the static pick as the fallback
/// for never-measured keys. Advances the per-communicator call counter.
/// Nonblocking twins bypass the tuner entirely (see below) — their
/// completion is asynchronous, so they could never record a timing, and
/// the blocking winner is the wrong pick for an overlapping schedule.
Choice pick_algo_impl(World& w, detail::CommData& c, CollOp op, size_t bytes,
                      bool ok, bool nonblocking) {
  Choice r;
  const CollTuning& t = w.coll_tuning();
  const int n = int(c.world_ranks.size());
  coll::Autotuner* tuner = w.tuner();
  // Nonblocking schedules always use the static table. The autotuner's
  // cost model is blocking latency, a poor proxy for overlap quality: the
  // blocking winner is often the most tightly synchronized algorithm,
  // exactly the one whose schedule twin pipelines worst. The static
  // table's per-size structure choices are pipeline-friendly by
  // construction. The shm fan-in is excluded from auto selection too — a
  // CPU-side barrier overlaps nothing, and the schedule machinery's fixed
  // cost exceeds the fan-in's entire latency at the sizes where shm wins
  // — but an explicitly forced kShm still builds its schedule (the
  // differential tests force every algorithm).
  if (nonblocking) {
    const bool allow = coll::forced_algo(t, op) != CollAlgo::kAuto && ok;
    r.algo = coll::select(op, t, n, bytes, allow);
    return r;
  }
  if (tuner == nullptr || !tuner_samples_valid(op) ||
      coll::forced_algo(t, op) != CollAlgo::kAuto) {
    r.algo = coll::select(op, t, n, bytes, ok);
    return r;
  }
  std::span<const CollAlgo> cand = coll::algos_for(op);
  // kShm is by convention the last registry entry; it never enters the
  // measured candidate set. The fan-in serializes the calling loop on its
  // internal barrier — a cost per-call latency samples cannot see (the
  // same blind spot that keeps it out of nonblocking selection), so
  // measuring it hands it wins its loop throughput does not earn. Where
  // the static table picks shm, that pick survives as the unmeasured
  // fallback (choose() never displaces a fallback without evidence
  // against it).
  if (!cand.empty() && cand.back() == CollAlgo::kShm)
    cand = cand.first(cand.size() - 1);
  r.key = coll::Autotuner::key(op, n, bytes);
  if (auto cached = c.tune_locked.find(r.key); cached != c.tune_locked.end()) {
    r.algo = cached->second;
    return r;
  }
  const u64 idx = c.tune_calls[r.key]++;
  r.algo = tuner->choose(r.key, idx, cand, coll::select(op, t, n, bytes, ok),
                         &r.exploring);
  if (!r.exploring) c.tune_locked.emplace(r.key, r.algo);
  return r;
}

/// pick_algo_impl plus observability: every selection (static, tuner
/// explore, tuner locked, nonblocking) lands in the per-thread algorithm
/// histogram and — when tracing — as a "coll.select" instant recording the
/// explore-vs-locked decision.
Choice pick_algo(World& w, detail::CommData& c, CollOp op, size_t bytes,
                 bool ok, bool nonblocking = false) {
  Choice r = pick_algo_impl(w, c, op, bytes, ok, nonblocking);
  if (MW_TRACE_ACTIVE()) {
    trace::note_algo(coll::coll_name(op), coll::algo_name(r.algo));
    trace::instant("coll", "coll.select", "bytes", i64(bytes), "exploring",
                   r.exploring ? 1 : 0, coll::coll_name(op),
                   coll::algo_name(r.algo));
  }
  return r;
}

/// Runs the dispatched algorithm, timing and recording it when exploring.
template <typename Fn>
void run_timed(Rank& r, detail::CommData& c, World& w, const Choice& sel,
               Fn&& fn) {
  if (!sel.exploring) {
    fn();
    return;
  }
  // Align entries before sampling: most collectives impose no exit
  // synchronization, so without this a rank's raw duration mostly measures
  // how late its peers arrived (and credits algorithms that let fast ranks
  // race ahead with their peers' wait time). Post-barrier, the local
  // duration approximates the algorithm's completion latency. Exploration
  // is rank-consistent, so every rank takes this barrier together.
  if (c.coll != nullptr)
    Engine::barrier_shm(r, c);
  else
    Engine::barrier_dissemination(r, c);
  const u64 t0 = now_ns();
  fn();
  w.tuner()->record(sel.key, sel.algo, f64(now_ns() - t0) * 1e-3);
}

}  // namespace

void Rank::barrier(Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  if (c.world_ranks.size() == 1) return;
  Choice sel = pick_algo(*world_, c, CollOp::kBarrier, 0, c.coll != nullptr);
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear: Engine::barrier_linear(*this, c); break;
      case CollAlgo::kShm: Engine::barrier_shm(*this, c); break;
      default: Engine::barrier_dissemination(*this, c); break;
    }
  });
}

void Rank::bcast(void* buf, int count, Datatype type, int root, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("bcast: root out of range");
  if (count < 0) throw MpiError("bcast: negative count");
  if (n == 1) return;
  size_t bytes = size_t(count) * datatype_size(type);
  Choice sel =
      pick_algo(*world_, c, CollOp::kBcast, bytes, shm_ok(c, *world_, bytes));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear: Engine::bcast_linear(*this, c, buf, bytes, root); break;
      case CollAlgo::kShm: Engine::bcast_shm(*this, c, buf, bytes, root); break;
      default: Engine::bcast_binomial(*this, c, buf, bytes, root); break;
    }
  });
}

void Rank::reduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, int root, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("reduce: root out of range");
  if (count < 0) throw MpiError("reduce: negative count");
  bool is_root = c.my_comm_rank == root;
  if (is_in_place(sendbuf)) {
    if (!is_root) throw MpiError("reduce: MPI_IN_PLACE only valid at root");
    sendbuf = recvbuf;  // input lives in recvbuf at the root
  }
  if (is_root && recvbuf == nullptr)
    throw MpiError("reduce: null recvbuf at root");
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return;
  }
  Choice sel =
      pick_algo(*world_, c, CollOp::kReduce, bytes, shm_ok(c, *world_, bytes));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::reduce_linear(*this, c, sendbuf, recvbuf, count, type, op,
                              root);
        break;
      case CollAlgo::kShm:
        Engine::reduce_shm(*this, c, sendbuf, recvbuf, count, type, op, root);
        break;
      default:
        Engine::reduce_binomial(*this, c, sendbuf, recvbuf, count, type, op,
                                root);
        break;
    }
  });
}

void Rank::allreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype type, ReduceOp op, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("allreduce: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return;
  }
  Choice sel = pick_algo(*world_, c, CollOp::kAllreduce, bytes,
                         shm_ok(c, *world_, bytes));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::allreduce_linear(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      case CollAlgo::kBinomial:
        Engine::allreduce_binomial(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      case CollAlgo::kRing:
        Engine::allreduce_ring(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      case CollAlgo::kRabenseifner:
        Engine::allreduce_rabenseifner(*this, c, sendbuf, recvbuf, count, type,
                                       op);
        break;
      case CollAlgo::kShm:
        Engine::allreduce_shm(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      default:
        Engine::allreduce_rdbl(*this, c, sendbuf, recvbuf, count, type, op);
        break;
    }
  });
}

void Rank::gather(const void* sendbuf, int sendcount, void* recvbuf,
                  int recvcount, Datatype type, int root, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("gather: root out of range");
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("gather: negative count");
  bool is_root = c.my_comm_rank == root;
  bool in_place = is_in_place(sendbuf);
  if (in_place && !is_root)
    throw MpiError("gather: MPI_IN_PLACE only valid at root");
  // MPI requires each sender's block to equal the root's receive block.
  size_t block = (is_root ? size_t(recvcount) : size_t(sendcount)) *
                 datatype_size(type);
  if (n == 1) {
    if (!in_place) std::memcpy(recvbuf, sendbuf, block);
    return;
  }
  Choice sel =
      pick_algo(*world_, c, CollOp::kGather, block, shm_ok(c, *world_, block));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::gather_linear(*this, c, sendbuf, recvbuf, block, root,
                              in_place);
        break;
      case CollAlgo::kShm:
        Engine::gather_shm(*this, c, sendbuf, recvbuf, block, root, in_place);
        break;
      default:
        Engine::gather_binomial(*this, c, sendbuf, recvbuf, block, root,
                                in_place);
        break;
    }
  });
}

void Rank::scatter(const void* sendbuf, int sendcount, void* recvbuf,
                   int recvcount, Datatype type, int root, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("scatter: root out of range");
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("scatter: negative count");
  bool is_root = c.my_comm_rank == root;
  bool in_place = is_in_place(recvbuf);
  if (in_place && !is_root)
    throw MpiError("scatter: MPI_IN_PLACE only valid at root");
  size_t block = (is_root ? size_t(sendcount) : size_t(recvcount)) *
                 datatype_size(type);
  if (n == 1) {
    if (!in_place) std::memcpy(recvbuf, sendbuf, block);
    return;
  }
  Choice sel =
      pick_algo(*world_, c, CollOp::kScatter, block, shm_ok(c, *world_, block));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::scatter_linear(*this, c, sendbuf, recvbuf, block, root,
                               in_place);
        break;
      case CollAlgo::kShm:
        Engine::scatter_shm(*this, c, sendbuf, recvbuf, block, root, in_place);
        break;
      default:
        Engine::scatter_binomial(*this, c, sendbuf, recvbuf, block, root,
                                 in_place);
        break;
    }
  });
}

void Rank::allgather(const void* sendbuf, int sendcount, void* recvbuf,
                     int recvcount, Datatype type, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("allgather: negative count");
  size_t block = size_t(recvcount) * datatype_size(type);
  bool in_place = is_in_place(sendbuf);
  if (in_place) {
    sendbuf = static_cast<u8*>(recvbuf) + size_t(me) * block;
  } else {
    block = size_t(sendcount) * datatype_size(type);
  }
  if (n == 1) {
    if (!in_place) std::memcpy(recvbuf, sendbuf, block);
    return;
  }
  Choice sel = pick_algo(*world_, c, CollOp::kAllgather, block,
                         shm_ok(c, *world_, block));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::allgather_linear(*this, c, sendbuf, recvbuf, block, in_place);
        break;
      case CollAlgo::kRecursiveDoubling:
        Engine::allgather_rdbl(*this, c, sendbuf, recvbuf, block, in_place);
        break;
      case CollAlgo::kShm:
        Engine::allgather_shm(*this, c, sendbuf, recvbuf, block, in_place);
        break;
      default:
        Engine::allgather_ring(*this, c, sendbuf, recvbuf, block, in_place);
        break;
    }
  });
}

void Rank::alltoall(const void* sendbuf, int sendcount, void* recvbuf,
                    int recvcount, Datatype type, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("alltoall: negative count");
  if (is_in_place(sendbuf))
    throw MpiError("alltoall: MPI_IN_PLACE not supported");
  size_t sblock = size_t(sendcount) * datatype_size(type);
  size_t rblock = size_t(recvcount) * datatype_size(type);
  if (n == 1) {
    std::memcpy(recvbuf, sendbuf, sblock);
    return;
  }
  Choice sel =
      pick_algo(*world_, c, CollOp::kAlltoall, sblock, /*ok=*/false);
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::alltoall_linear(*this, c, sendbuf, recvbuf, sblock, rblock);
        break;
      default:
        Engine::alltoall_pairwise(*this, c, sendbuf, recvbuf, sblock, rblock);
        break;
    }
  });
}

void Rank::alltoallv(const void* sendbuf, const int* sendcounts,
                     const int* sdispls, void* recvbuf, const int* recvcounts,
                     const int* rdispls, Datatype type, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  if (is_in_place(sendbuf))
    throw MpiError("alltoallv: MPI_IN_PLACE not supported");
  size_t esize = datatype_size(type);
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(rdispls[me]) * esize,
              in + size_t(sdispls[me]) * esize,
              size_t(std::min(sendcounts[me], recvcounts[me])) * esize);
  for (int s = 1; s < n; ++s) {
    int to = (me + s) % n;
    int from = (me - s + n) % n;
    Request r = irecv_internal(out + size_t(rdispls[from]) * esize,
                               size_t(recvcounts[from]) * esize, from,
                               kCollectiveTag, c);
    send_internal(in + size_t(sdispls[to]) * esize,
                  size_t(sendcounts[to]) * esize, to, kCollectiveTag, c);
    wait(r);
  }
}

void Rank::reduce_scatter(const void* sendbuf, void* recvbuf,
                          const int* recvcounts, Datatype type, ReduceOp op,
                          Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  size_t esize = datatype_size(type);
  size_t total = 0;
  for (int i = 0; i < n; ++i) {
    if (recvcounts[i] < 0) throw MpiError("reduce_scatter: negative count");
    total += size_t(recvcounts[i]);
  }
  // In-place input (full vector in recvbuf) is signalled to the algorithm
  // layer by a null sendbuf.
  const void* input = is_in_place(sendbuf) ? nullptr : sendbuf;
  if (n == 1) {
    if (input != nullptr)
      std::memmove(recvbuf, input, size_t(recvcounts[0]) * esize);
    return;
  }
  Choice sel = pick_algo(*world_, c, CollOp::kReduceScatter, total * esize,
                         shm_ok(c, *world_, total * esize));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kPairwise:
        Engine::reduce_scatter_pairwise(*this, c, input, recvbuf, recvcounts,
                                        type, op);
        break;
      case CollAlgo::kShm:
        Engine::reduce_scatter_shm(*this, c, input, recvbuf, recvcounts, type,
                                   op);
        break;
      default:
        Engine::reduce_scatter_linear(*this, c, input, recvbuf, recvcounts,
                                      type, op);
        break;
    }
  });
}

void Rank::scan(const void* sendbuf, void* recvbuf, int count, Datatype type,
                ReduceOp op, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("scan: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return;
  }
  Choice sel =
      pick_algo(*world_, c, CollOp::kScan, bytes, shm_ok(c, *world_, bytes));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::scan_linear(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      case CollAlgo::kShm:
        Engine::scan_shm(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      default:
        Engine::scan_rdbl(*this, c, sendbuf, recvbuf, count, type, op);
        break;
    }
  });
}

void Rank::exscan(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, Comm comm) {
  maybe_icoll_progress();
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("exscan: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) return;  // recvbuf undefined on rank 0
  Choice sel =
      pick_algo(*world_, c, CollOp::kExscan, bytes, shm_ok(c, *world_, bytes));
  run_timed(*this, c, *world_, sel, [&] {
    switch (sel.algo) {
      case CollAlgo::kLinear:
        Engine::exscan_linear(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      case CollAlgo::kShm:
        Engine::exscan_shm(*this, c, sendbuf, recvbuf, count, type, op);
        break;
      default:
        Engine::exscan_rdbl(*this, c, sendbuf, recvbuf, count, type, op);
        break;
    }
  });
}

// ---------------------------------------------------------------------------
// Nonblocking collectives: validation + MPI_IN_PLACE resolution + the same
// size x comm-size algorithm selection as the blocking twins, then a
// schedule build (coll_sched.cc) registered with the progress engine.
// ---------------------------------------------------------------------------

Request Rank::ibarrier(Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (n == 1) return Request{};
  CollAlgo a = pick_algo(*world_, c, CollOp::kBarrier, 0,
                         c.coll != nullptr,
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_ibarrier(world_, c, c.icoll_seq++, a));
}

Request Rank::ibcast(void* buf, int count, Datatype type, int root, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("ibcast: root out of range");
  if (count < 0) throw MpiError("ibcast: negative count");
  if (n == 1) return Request{};
  size_t bytes = size_t(count) * datatype_size(type);
  CollAlgo a = pick_algo(*world_, c, CollOp::kBcast, bytes,
                         shm_ok(c, *world_, bytes),
                         /*nonblocking=*/true).algo;
  return start_icoll(
      coll::build_ibcast(world_, c, c.icoll_seq++, a, buf, bytes, root));
}

Request Rank::ireduce(const void* sendbuf, void* recvbuf, int count,
                      Datatype type, ReduceOp op, int root, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (root < 0 || root >= n) throw MpiError("ireduce: root out of range");
  if (count < 0) throw MpiError("ireduce: negative count");
  bool is_root = c.my_comm_rank == root;
  if (is_in_place(sendbuf)) {
    if (!is_root) throw MpiError("ireduce: MPI_IN_PLACE only valid at root");
    sendbuf = recvbuf;
  }
  if (is_root && recvbuf == nullptr)
    throw MpiError("ireduce: null recvbuf at root");
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kReduce, bytes,
                         shm_ok(c, *world_, bytes),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_ireduce(world_, c, c.icoll_seq++, a, sendbuf,
                                         recvbuf, count, type, op, root));
}

Request Rank::iallreduce(const void* sendbuf, void* recvbuf, int count,
                         Datatype type, ReduceOp op, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("iallreduce: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kAllreduce, bytes,
                         shm_ok(c, *world_, bytes),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_iallreduce(world_, c, c.icoll_seq++, a,
                                            sendbuf, recvbuf, count, type,
                                            op));
}

Request Rank::iallgather(const void* sendbuf, int sendcount, void* recvbuf,
                         int recvcount, Datatype type, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("iallgather: negative count");
  size_t block = size_t(recvcount) * datatype_size(type);
  bool in_place = is_in_place(sendbuf);
  if (in_place) {
    sendbuf = static_cast<u8*>(recvbuf) + size_t(me) * block;
  } else {
    block = size_t(sendcount) * datatype_size(type);
  }
  if (n == 1) {
    if (!in_place) std::memcpy(recvbuf, sendbuf, block);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kAllgather, block,
                         shm_ok(c, *world_, block),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_iallgather(world_, c, c.icoll_seq++, a,
                                            sendbuf, recvbuf, block));
}

Request Rank::ialltoall(const void* sendbuf, int sendcount, void* recvbuf,
                        int recvcount, Datatype type, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (sendcount < 0 || recvcount < 0)
    throw MpiError("ialltoall: negative count");
  if (is_in_place(sendbuf))
    throw MpiError("ialltoall: MPI_IN_PLACE not supported");
  size_t sblock = size_t(sendcount) * datatype_size(type);
  size_t rblock = size_t(recvcount) * datatype_size(type);
  if (n == 1) {
    std::memcpy(recvbuf, sendbuf, sblock);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kAlltoall, sblock,
                         /*ok=*/false,
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_ialltoall(world_, c, c.icoll_seq++, a,
                                           sendbuf, recvbuf, sblock, rblock));
}

Request Rank::ireduce_scatter(const void* sendbuf, void* recvbuf,
                              const int* recvcounts, Datatype type,
                              ReduceOp op, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  size_t esize = datatype_size(type);
  size_t total = 0;
  for (int i = 0; i < n; ++i) {
    if (recvcounts[i] < 0) throw MpiError("ireduce_scatter: negative count");
    total += size_t(recvcounts[i]);
  }
  const void* input = is_in_place(sendbuf) ? nullptr : sendbuf;
  if (n == 1) {
    if (input != nullptr)
      std::memmove(recvbuf, input, size_t(recvcounts[0]) * esize);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kReduceScatter, total * esize,
                         shm_ok(c, *world_, total * esize),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_ireduce_scatter(
      world_, c, c.icoll_seq++, a, input, recvbuf, recvcounts, type, op));
}

Request Rank::iscan(const void* sendbuf, void* recvbuf, int count,
                    Datatype type, ReduceOp op, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("iscan: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) {
    if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
    return Request{};
  }
  CollAlgo a = pick_algo(*world_, c, CollOp::kScan, bytes,
                         shm_ok(c, *world_, bytes),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_iscan(world_, c, c.icoll_seq++, a, sendbuf,
                                       recvbuf, count, type, op));
}

Request Rank::iexscan(const void* sendbuf, void* recvbuf, int count,
                      Datatype type, ReduceOp op, Comm comm) {
  detail::CommData& c = comm_data_mut(comm);
  int n = int(c.world_ranks.size());
  if (count < 0) throw MpiError("iexscan: negative count");
  if (is_in_place(sendbuf)) sendbuf = recvbuf;
  size_t bytes = size_t(count) * datatype_size(type);
  if (n == 1) return Request{};  // recvbuf undefined on rank 0
  CollAlgo a = pick_algo(*world_, c, CollOp::kExscan, bytes,
                         shm_ok(c, *world_, bytes),
                         /*nonblocking=*/true).algo;
  return start_icoll(coll::build_iexscan(world_, c, c.icoll_seq++, a, sendbuf,
                                         recvbuf, count, type, op));
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm Rank::comm_dup(Comm comm) {
  const detail::CommData parent = comm_data(comm);
  // Rank 0 of the parent allocates the new id; everyone learns it by bcast.
  i32 new_id = 0;
  if (parent.my_comm_rank == 0) new_id = world_->alloc_comm_ids(1);
  bcast(&new_id, 1, Datatype::kInt, 0, comm);
  detail::CommData dup = parent;
  dup.id = new_id;
  dup.coll = world_->attach_coll(new_id, int(dup.world_ranks.size()));
  {
    std::unique_lock<std::shared_mutex> lock(comms_mu_);
    comms_[new_id] = std::move(dup);
  }
  return new_id;
}

Comm Rank::comm_split(Comm comm, int color, int key) {
  const detail::CommData parent = comm_data(comm);
  int n = int(parent.world_ranks.size());

  // Gather everyone's (color, key).
  std::vector<int> pairs(size_t(n) * 2);
  int mine[2] = {color, key};
  allgather(mine, 2, pairs.data(), 2, Datatype::kInt, comm);

  // Distinct colors in sorted order (excluding kUndefined) determine the
  // per-color communicator index.
  std::vector<int> colors;
  for (int r = 0; r < n; ++r) {
    int col = pairs[2 * r];
    if (col == kUndefined) continue;
    bool seen = false;
    for (int c2 : colors) seen = seen || c2 == col;
    if (!seen) colors.push_back(col);
  }
  std::sort(colors.begin(), colors.end());

  // Parent rank 0 allocates a contiguous id range; broadcast the base.
  i32 base = 0;
  if (parent.my_comm_rank == 0) base = world_->alloc_comm_ids(i32(colors.size()));
  bcast(&base, 1, Datatype::kInt, 0, comm);

  if (color == kUndefined) return kCommNull;

  int color_index = 0;
  for (size_t i = 0; i < colors.size(); ++i)
    if (colors[i] == color) color_index = int(i);

  // Members of my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < n; ++r)
    if (pairs[2 * r] == color) members.push_back({pairs[2 * r + 1], r});
  std::sort(members.begin(), members.end());

  detail::CommData nc;
  nc.id = base + color_index;
  nc.world_ranks.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    nc.world_ranks.push_back(parent.world_ranks[members[i].second]);
    if (members[i].second == parent.my_comm_rank) nc.my_comm_rank = int(i);
  }
  nc.coll = world_->attach_coll(nc.id, int(members.size()));
  Comm id = nc.id;
  {
    std::unique_lock<std::shared_mutex> lock(comms_mu_);
    comms_[id] = std::move(nc);
  }
  return id;
}

void Rank::comm_free(Comm comm) {
  if (comm == kCommWorld) throw MpiError("cannot free MPI_COMM_WORLD");
  comm_data(comm);  // validates the handle (throws on an unknown id)
  // MPI_Comm_free must let pending operations complete: outstanding
  // nonblocking-collective schedules hold a pointer into this CommData, so
  // drain them before it is destroyed. Every member rank frees the
  // communicator, so the collective can always run to completion here.
  auto drained = [&] {
    std::lock_guard<std::recursive_mutex> guard(icoll_mu_);
    for (const auto& s : icoll_active_)
      if (s->comm_id() == comm) return false;
    return true;
  };
  if (!drained())
    poll_with_progress(drained, "comm_free: outstanding nonblocking collective");
  std::unique_lock<std::shared_mutex> lock(comms_mu_);
  auto it = comms_.find(comm);
  if (it == comms_.end()) throw MpiError("comm_free: invalid communicator");
  if (it->second.coll != nullptr) world_->release_coll(comm);
  comms_.erase(it);
}

}  // namespace mpiwasm::simmpi
