#include "simmpi/coll_tune.h"

#include <bit>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "simmpi/coll_algos.h"

namespace mpiwasm::simmpi::coll {

namespace fs = std::filesystem;

namespace {
constexpr const char* kMagic = "mpiwasm-coll-tune v1";
}  // namespace

Autotuner::Autotuner(std::string signature) : sig_(std::move(signature)) {}

std::string Autotuner::host_signature(int hw_threads,
                                      const std::string& profile,
                                      int world_size) {
  std::ostringstream os;
  os << "hw=" << hw_threads << " profile=" << profile
     << " ranks=" << world_size;
  return os.str();
}

u64 Autotuner::key(CollOp op, int nranks, size_t bytes) {
  // Size bins are powers of two: bit_width collapses e.g. 5..8 bytes into
  // one bin, which keeps the table small and the measurements dense.
  const u64 bin = u64(std::bit_width(u64(bytes)));
  return (u64(i32(op)) << 40) | (u64(u32(nranks)) << 8) | bin;
}

CollAlgo Autotuner::choose(u64 key, u64 call_idx,
                           std::span<const CollAlgo> candidates,
                           CollAlgo fallback, bool* exploring) {
  *exploring = false;
  if (candidates.empty()) return fallback;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = table_[key];
  // A preloaded winner is immutable for the whole run, so returning it
  // from call 0 is rank-consistent; a winner locked mid-run is not seen
  // until the caller's own call index leaves the exploration window (the
  // choice must stay a pure function of the rank-consistent index — a rank
  // observing the lock earlier than its peer would diverge and deadlock).
  if (e.preloaded && e.locked != CollAlgo::kAuto) return e.locked;
  const u64 n = candidates.size();
  if (call_idx < u64(kExploreRounds) * n) {
    *exploring = true;
    return candidates[size_t(call_idx % n)];
  }
  if (e.locked != CollAlgo::kAuto) return e.locked;
  // Budget spent: the first arriver locks the EWMA argmin, write-once;
  // every later call reads that value. Keys never measured (e.g. a purely
  // nonblocking workload, which explores but cannot time individual
  // calls) keep the static table's pick.
  CollAlgo best = fallback;
  f64 best_us = std::numeric_limits<f64>::infinity();
  for (CollAlgo a : candidates) {
    auto it = e.ewma.find(a);
    if (it != e.ewma.end() && it->second < best_us) {
      best_us = it->second;
      best = a;
    }
  }
  // Hysteresis toward the static table's pick: the samples are per-call
  // blocking latencies, which are blind to cross-call pipelining (a bcast
  // leaf exits the moment its data lands, so unsynchronized algorithms
  // overlap successive calls and win on throughput while measuring even),
  // and on an oversubscribed host they carry scheduler noise besides. The
  // static prior stays locked unless a candidate measures a clear win —
  // and a fallback that was never sampled (e.g. the shm fan-in, which is
  // kept out of the candidate set) stays locked unconditionally: there is
  // no measured evidence against it.
  auto fb = e.ewma.find(fallback);
  if (best != fallback &&
      (fb == e.ewma.end() || best_us > fb->second * kLockMargin)) {
    best = fallback;
  }
  e.locked = best;
  dirty_ = true;
  return best;
}

void Autotuner::record(u64 key, CollAlgo algo, f64 us) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = table_[key];
  auto [it, fresh] = e.ewma.try_emplace(algo, us);
  if (fresh) return;
  // Clamp spikes before smoothing: a thread descheduled mid-collective
  // reports a sample an order of magnitude above the algorithm's real
  // cost, and with a handful of exploration samples one such outlier
  // would dominate the average and poison the lock decision.
  us = std::min(us, it->second * 8.0);
  it->second += kAlpha * (us - it->second);
}

CollAlgo Autotuner::winner(u64 key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  return it == table_.end() ? CollAlgo::kAuto : it->second.locked;
}

f64 Autotuner::ewma_us(u64 key, CollAlgo algo) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return -1.0;
  auto jt = it->second.ewma.find(algo);
  return jt == it->second.ewma.end() ? -1.0 : jt->second;
}

bool Autotuner::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return false;
  if (!std::getline(in, line) || line != "sig " + sig_) return false;
  std::map<u64, Entry> loaded;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    u64 k = 0;
    std::string name;
    if (!(ls >> k >> name)) return false;
    CollAlgo a;
    if (!algo_from_name(name, &a) || a == CollAlgo::kAuto) return false;
    loaded[k].locked = a;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, e] : loaded) {
    table_[k].locked = e.locked;
    table_[k].preloaded = true;
  }
  return true;
}

bool Autotuner::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
  }
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << kMagic << '\n' << "sig " << sig_ << '\n';
    for (const auto& [k, e] : table_) {
      if (e.locked == CollAlgo::kAuto) continue;
      out << k << ' ' << algo_name(e.locked) << '\n';
    }
    if (!out) return false;
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool Autotuner::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_;
}

}  // namespace mpiwasm::simmpi::coll
