#include "simmpi/coll_sched.h"

#include <cstring>

#include "simmpi/coll_tree.h"
#include "simmpi/reduce_ops.h"
#include "support/log.h"
#include "support/timing.h"
#include "support/trace.h"

namespace mpiwasm::simmpi::coll {

// ---------------------------------------------------------------------------
// Schedule: step machinery
// ---------------------------------------------------------------------------

Schedule::Schedule(World* world, const detail::CommData& c, i64 seq)
    : world_(world),
      c_(&c),
      comm_id_(c.id),
      seq_(seq),
      tag_base_(kIcollTagBase - int(seq % kIcollSeqWindow) * kIcollRounds) {}

Schedule::~Schedule() {
  if (shm_ != nullptr) world_->release_icoll_group(comm_id_, seq_);
}

u8* Schedule::scratch(size_t bytes) {
  scratch_.push_back(
      std::make_unique<std::vector<u8>>(bytes > 0 ? bytes : 1));
  return scratch_.back()->data();
}

IcollShmGroup& Schedule::shm_group(size_t slot_bytes) {
  if (shm_ == nullptr)
    shm_ = world_->attach_icoll_group(c_->id, seq_,
                                      int(c_->world_ranks.size()), slot_bytes);
  return *shm_;
}

Schedule::StepId Schedule::push(Step step, std::vector<StepId> deps) {
  for (StepId d : deps)
    if (d != kNone) step.deps.push_back(d);
  steps_.push_back(std::move(step));
  ++remaining_;
  return StepId(steps_.size()) - 1;
}

Schedule::StepId Schedule::send(const void* buf, size_t bytes, int peer,
                                int round, std::vector<StepId> deps) {
  MW_CHECK(round >= 0 && round < kIcollRounds, "icoll round out of range");
  Step s;
  s.kind = Step::Kind::kSend;
  s.src = buf;
  s.bytes = bytes;
  s.peer = peer;
  s.tag = tag_base_ - round;
  s.wire_ns = world_->profile().message_cost_ns(bytes);
  return push(std::move(s), std::move(deps));
}

Schedule::StepId Schedule::recv(void* buf, size_t bytes, int peer, int round,
                                std::vector<StepId> deps) {
  MW_CHECK(round >= 0 && round < kIcollRounds, "icoll round out of range");
  Step s;
  s.kind = Step::Kind::kRecv;
  s.dst = buf;
  s.bytes = bytes;
  s.peer = peer;
  s.tag = tag_base_ - round;
  return push(std::move(s), std::move(deps));
}

Schedule::StepId Schedule::reduce(const void* src, void* dst, int count,
                                  Datatype type, ReduceOp op,
                                  std::vector<StepId> deps) {
  Step s;
  s.kind = Step::Kind::kReduce;
  s.src = src;
  s.dst = dst;
  s.count = count;
  s.type = type;
  s.op = op;
  return push(std::move(s), std::move(deps));
}

Schedule::StepId Schedule::copy(const void* src, void* dst, size_t bytes,
                                std::vector<StepId> deps) {
  Step s;
  s.kind = Step::Kind::kCopy;
  s.src = src;
  s.dst = dst;
  s.bytes = bytes;
  return push(std::move(s), std::move(deps));
}

Schedule::StepId Schedule::shm_arrive(int phase, size_t charge_bytes,
                                      std::vector<StepId> deps) {
  Step s;
  s.kind = Step::Kind::kShmArrive;
  s.phase = phase;
  s.wire_ns = world_->profile().message_cost_ns(charge_bytes);
  return push(std::move(s), std::move(deps));
}

Schedule::StepId Schedule::shm_wait(int phase, std::vector<StepId> deps) {
  Step s;
  s.kind = Step::Kind::kShmWait;
  s.phase = phase;
  return push(std::move(s), std::move(deps));
}

bool Schedule::deps_done(const Step& s) const {
  for (StepId d : s.deps)
    if (steps_[size_t(d)].state != Step::State::kDone) return false;
  return true;
}

bool Schedule::advance(Rank& r, Step& s) {
  switch (s.kind) {
    case Step::Kind::kReduce:
      apply_reduce(s.op, s.type, s.src, s.dst, s.count);
      return true;
    case Step::Kind::kCopy:
      std::memmove(s.dst, s.src, s.bytes);
      return true;
    case Step::Kind::kSend:
      if (s.state == Step::State::kPending) {
        // Post immediately so peers can match; the wire-time deadline
        // (instead of the blocking path's injection spin) is what lets the
        // transfer proceed while the rank computes. Pipelined sends carry
        // per-segment deadlines inside the descriptor, so charging a
        // whole-message deadline here would double-count the wire.
        const bool pipelined = r.sched_send_pipelined(s.bytes);
        s.req = r.isend_internal(s.src, s.bytes, s.peer, s.tag, *c_,
                                 /*charge_wire=*/false);
        s.ready_at_ns = pipelined ? 0 : now_ns() + s.wire_ns;
        s.state = Step::State::kStarted;
      }
      if (s.req.valid() && !r.test_nonblocking(s.req)) return false;
      return now_ns() >= s.ready_at_ns;
    case Step::Kind::kRecv:
      if (s.state == Step::State::kPending) {
        s.req = r.irecv_internal(s.dst, s.bytes, s.peer, s.tag, *c_);
        s.state = Step::State::kStarted;
      }
      return !s.req.valid() || r.test_nonblocking(s.req);
    case Step::Kind::kShmArrive:
      if (s.state == Step::State::kPending) {
        shm_->arrive(s.phase);
        s.ready_at_ns = now_ns() + s.wire_ns;
        s.state = Step::State::kStarted;
      }
      return now_ns() >= s.ready_at_ns;
    case Step::Kind::kShmWait:
      return shm_->arrived_all(s.phase);
  }
  return false;
}

bool Schedule::progress(Rank& r) {
  bool advanced = true;
  while (advanced && remaining_ > 0) {
    advanced = false;
    for (Step& s : steps_) {
      if (s.state == Step::State::kDone) continue;
      if (!deps_done(s)) continue;
      if (advance(r, s)) {
        s.state = Step::State::kDone;
        --remaining_;
        advanced = true;
        if (MW_TRACE_ACTIVE()) {
          const char* kind = "?";
          switch (s.kind) {
            case Step::Kind::kSend: kind = "send"; break;
            case Step::Kind::kRecv: kind = "recv"; break;
            case Step::Kind::kReduce: kind = "reduce"; break;
            case Step::Kind::kCopy: kind = "copy"; break;
            case Step::Kind::kShmArrive: kind = "shm_arrive"; break;
            case Step::Kind::kShmWait: kind = "shm_wait"; break;
          }
          trace::instant("sched", "sched.step", "bytes", i64(s.bytes), "peer",
                         s.peer, "kind", kind);
        }
      }
    }
  }
  return remaining_ == 0;
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

std::shared_ptr<Schedule> build_ibarrier(World* w, const detail::CommData& c,
                                         i64 seq, CollAlgo algo) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  u8* tok = s->scratch(2);  // [0] token out, [1] sink in
  switch (algo) {
    case CollAlgo::kLinear:
      if (me == 0) {
        std::vector<Schedule::StepId> got;
        for (int src = 1; src < n; ++src)
          got.push_back(s->recv(tok + 1, 1, src, 0, {}));
        for (int dst = 1; dst < n; ++dst) s->send(tok, 1, dst, 1, got);
      } else {
        Schedule::StepId snd = s->send(tok, 1, 0, 0, {});
        s->recv(tok + 1, 1, 0, 1, {snd});
      }
      break;
    case CollAlgo::kShm: {
      s->shm_group(1);
      Schedule::StepId a = s->shm_arrive(0, 0, {});
      s->shm_wait(0, {a});
      break;
    }
    default: {  // dissemination
      Schedule::StepId ps = Schedule::kNone, pr = Schedule::kNone;
      int round = 0;
      for (int k = 1; k < n; k <<= 1, ++round) {
        Schedule::StepId snd =
            s->send(tok, 1, (me + k) % n, round, {ps, pr});
        Schedule::StepId rv =
            s->recv(tok + 1, 1, (me - k + n) % n, round, {ps, pr});
        ps = snd;
        pr = rv;
      }
      break;
    }
  }
  return s;
}

std::shared_ptr<Schedule> build_ibcast(World* w, const detail::CommData& c,
                                       i64 seq, CollAlgo algo, void* buf,
                                       size_t bytes, int root) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  switch (algo) {
    case CollAlgo::kLinear:
      if (me == root) {
        for (int dst = 0; dst < n; ++dst)
          if (dst != root) s->send(buf, bytes, dst, 0, {});
      } else {
        s->recv(buf, bytes, root, 0, {});
      }
      break;
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(bytes);
      if (me == root) {
        Schedule::StepId cp = s->copy(buf, g.slot(root), bytes, {});
        Schedule::StepId a0 = s->shm_arrive(0, bytes, {cp});
        Schedule::StepId w0 = s->shm_wait(0, {a0});
        Schedule::StepId a1 = s->shm_arrive(1, 0, {w0});
        s->shm_wait(1, {a1});
      } else {
        Schedule::StepId a0 = s->shm_arrive(0, 0, {});
        Schedule::StepId w0 = s->shm_wait(0, {a0});
        Schedule::StepId cp = s->copy(g.slot(root), buf, bytes, {w0});
        // Fan-out charge, then keep the root's slot alive until every
        // reader is done (the bcast_shm double barrier).
        Schedule::StepId a1 = s->shm_arrive(1, bytes, {cp});
        s->shm_wait(1, {a1});
      }
      break;
    }
    default: {  // binomial
      const int mr = rel(me, root, n);
      Schedule::StepId got = Schedule::kNone;
      if (mr != 0) {
        int lsb = mr & -mr;
        got = s->recv(buf, bytes, unrel(mr - lsb, root, n), 0, {});
      }
      int lsb = mr == 0 ? (1 << 30) : (mr & -mr);
      for (int k = 1; k < lsb && k < n; k <<= 1)
        if (mr + k < n)
          s->send(buf, bytes, unrel(mr + k, root, n), 0, {got});
      break;
    }
  }
  return s;
}

namespace {

/// Appends a rooted linear reduce into `recvbuf` (significant at the root
/// only). Returns this rank's final participation step: the tail of the
/// combine chain at the root, the contribution send elsewhere. `round` is
/// the tag round used by the contribution messages.
Schedule::StepId sched_reduce_linear(Schedule& s, const detail::CommData& c,
                                     const void* sendbuf, void* recvbuf,
                                     int count, Datatype type, ReduceOp op,
                                     int root, int round) {
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  if (me != root) return s.send(sendbuf, bytes, root, round, {});
  // Canonical left-to-right combine over comm-rank order; contributions
  // arrive into per-source scratch so the receives themselves overlap.
  u8* own = s.scratch(bytes);
  Schedule::StepId own_cp = s.copy(sendbuf, own, bytes, {});
  Schedule::StepId prev = Schedule::kNone;
  for (int src = 0; src < n; ++src) {
    const u8* contrib;
    Schedule::StepId ready;
    if (src == root) {
      contrib = own;
      ready = own_cp;
    } else {
      u8* in = s.scratch(bytes);
      ready = s.recv(in, bytes, src, round, {});
      contrib = in;
    }
    prev = src == 0 ? s.copy(contrib, recvbuf, bytes, {ready})
                    : s.reduce(contrib, recvbuf, count, type, op,
                               {ready, prev});
  }
  return prev;
}

/// Appends a binomial-tree reduce; returns {final local step, accumulator}.
/// At relative rank 0 the result is left in the returned accumulator.
struct BinomialReduce {
  Schedule::StepId last = Schedule::kNone;
  u8* acc = nullptr;
};
BinomialReduce sched_reduce_binomial(Schedule& s, const detail::CommData& c,
                                     const void* sendbuf, int count,
                                     Datatype type, ReduceOp op, int root,
                                     int round) {
  const int n = int(c.world_ranks.size());
  const int mr = rel(c.my_comm_rank, root, n);
  const size_t bytes = size_t(count) * datatype_size(type);
  u8* acc = s.scratch(bytes);
  Schedule::StepId prev = s.copy(sendbuf, acc, bytes, {});
  for (int k = 1; k < n; k <<= 1) {
    if ((mr & k) != 0) {
      prev = s.send(acc, bytes, unrel(mr - k, root, n), round, {prev});
      break;
    }
    if (mr + k < n) {
      u8* in = s.scratch(bytes);
      Schedule::StepId rv =
          s.recv(in, bytes, unrel(mr + k, root, n), round, {});
      prev = s.reduce(in, acc, count, type, op, {rv, prev});
    }
  }
  return {prev, acc};
}

}  // namespace

std::shared_ptr<Schedule> build_ireduce(World* w, const detail::CommData& c,
                                        i64 seq, CollAlgo algo,
                                        const void* sendbuf, void* recvbuf,
                                        int count, Datatype type, ReduceOp op,
                                        int root) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  switch (algo) {
    case CollAlgo::kLinear:
      sched_reduce_linear(*s, c, sendbuf, recvbuf, count, type, op, root, 0);
      break;
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(bytes);
      Schedule::StepId cp = s->copy(sendbuf, g.slot(me), bytes, {});
      Schedule::StepId a0 = s->shm_arrive(0, bytes, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      Schedule::StepId a1;
      if (me == root) {
        Schedule::StepId prev = s->copy(g.slot(0), recvbuf, bytes, {w0});
        for (int src = 1; src < n; ++src)
          prev = s->reduce(g.slot(src), recvbuf, count, type, op, {prev});
        a1 = s->shm_arrive(1, bytes, {prev});
      } else {
        a1 = s->shm_arrive(1, 0, {w0});
      }
      s->shm_wait(1, {a1});
      break;
    }
    default: {  // binomial
      BinomialReduce br =
          sched_reduce_binomial(*s, c, sendbuf, count, type, op, root, 0);
      if (me == root && recvbuf != nullptr)
        s->copy(br.acc, recvbuf, bytes, {br.last});
      break;
    }
  }
  return s;
}

namespace {

/// Recursive-doubling allreduce schedule (with the non-pof2 fold-in/out of
/// allreduce_rdbl). Result lands in recvbuf on every rank.
void sched_allreduce_rdbl(Schedule& s, const detail::CommData& c,
                          const void* sendbuf, void* recvbuf, int count,
                          Datatype type, ReduceOp op) {
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  Schedule::StepId prev = s.copy(sendbuf, recvbuf, bytes, {});
  u8* tmp = s.scratch(bytes);
  const int pof2 = floor_pof2(n);
  const int rem = n - pof2;
  int log2p = 0;
  for (int p = 1; p < pof2; p <<= 1) ++log2p;
  int round = 0;
  int newrank;
  if (me < 2 * rem) {
    if ((me % 2) == 0) {
      prev = s.send(recvbuf, bytes, me + 1, round, {prev});
      newrank = -1;
    } else {
      Schedule::StepId rv = s.recv(tmp, bytes, me - 1, round, {});
      prev = s.reduce(tmp, recvbuf, count, type, op, {rv, prev});
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  ++round;
  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      int newpartner = newrank ^ mask;
      int partner = newpartner < rem ? newpartner * 2 + 1 : newpartner + rem;
      // Receive first so the partner's eager send finds a live posted
      // receive (direct delivery, no staging copy).
      Schedule::StepId rv = s.recv(tmp, bytes, partner, round, {prev});
      Schedule::StepId snd = s.send(recvbuf, bytes, partner, round, {prev});
      prev = s.reduce(tmp, recvbuf, count, type, op, {snd, rv});
    }
  } else {
    round += log2p;  // keep fold-out rounds aligned across ranks
  }
  if (me < 2 * rem) {
    if ((me % 2) == 0)
      s.recv(recvbuf, bytes, me + 1, round, {prev});
    else
      s.send(recvbuf, bytes, me - 1, round, {prev});
  }
}

/// Ring allreduce schedule: reduce-scatter rounds then allgather rounds.
void sched_allreduce_ring(Schedule& s, const detail::CommData& c,
                          const void* sendbuf, void* recvbuf, int count,
                          Datatype type, ReduceOp op) {
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t esize = datatype_size(type);
  u8* out = static_cast<u8*>(recvbuf);
  std::vector<int> cnts, offs;
  chunk_counts(count, n, &cnts, &offs);
  u8* tmp = s.scratch((size_t(count) / size_t(n) + 1) * esize);
  const int right = (me + 1) % n, left = (me - 1 + n) % n;
  std::vector<Schedule::StepId> prevs = {
      s.copy(sendbuf, recvbuf, size_t(count) * esize, {})};
  int round = 0;
  // Each round posts its receive before its send: advance() starts steps in
  // push order, so by symmetry the peer's receive tends to be live when an
  // eager chunk lands, enabling the direct single-copy delivery path.
  for (int st = 0; st < n - 1; ++st, ++round) {
    int send_chunk = (me - st + n) % n;
    int recv_chunk = (me - st - 1 + n) % n;
    Schedule::StepId rv = s.recv(tmp, size_t(cnts[recv_chunk]) * esize, left,
                                 round, prevs);
    Schedule::StepId snd =
        s.send(out + size_t(offs[send_chunk]) * esize,
               size_t(cnts[send_chunk]) * esize, right, round, prevs);
    prevs = {s.reduce(tmp, out + size_t(offs[recv_chunk]) * esize,
                      cnts[recv_chunk], type, op, {snd, rv})};
  }
  for (int st = 0; st < n - 1; ++st, ++round) {
    int send_chunk = (me + 1 - st + n) % n;
    int recv_chunk = (me - st + n) % n;
    Schedule::StepId rv =
        s.recv(out + size_t(offs[recv_chunk]) * esize,
               size_t(cnts[recv_chunk]) * esize, left, round, prevs);
    Schedule::StepId snd =
        s.send(out + size_t(offs[send_chunk]) * esize,
               size_t(cnts[send_chunk]) * esize, right, round, prevs);
    prevs = {snd, rv};
  }
}

/// Rabenseifner allreduce schedule: reduce-scatter by recursive halving,
/// allgather by replaying the halving windows in reverse.
void sched_allreduce_raben(Schedule& s, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, int count,
                           Datatype type, ReduceOp op) {
  const int n = int(c.world_ranks.size());
  const int pof2 = floor_pof2(n);
  if (count < pof2) {  // chunks would be empty; rdbl handles this size
    sched_allreduce_rdbl(s, c, sendbuf, recvbuf, count, type, op);
    return;
  }
  const int me = c.my_comm_rank;
  const size_t esize = datatype_size(type);
  const size_t bytes = size_t(count) * esize;
  u8* out = static_cast<u8*>(recvbuf);
  u8* tmp = s.scratch(bytes);
  Schedule::StepId prev = s.copy(sendbuf, recvbuf, bytes, {});
  const int rem = n - pof2;
  int round = 0;
  int newrank;
  if (me < 2 * rem) {
    if ((me % 2) == 0) {
      prev = s.send(out, bytes, me + 1, round, {prev});
      newrank = -1;
    } else {
      Schedule::StepId rv = s.recv(tmp, bytes, me - 1, round, {});
      prev = s.reduce(tmp, out, count, type, op, {rv, prev});
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  ++round;
  const int log2p = [&] {
    int l = 0;
    for (int p = 1; p < pof2; p <<= 1) ++l;
    return l;
  }();
  if (newrank >= 0) {
    auto real_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    std::vector<int> cnts, offs;
    chunk_counts(count, pof2, &cnts, &offs);
    auto range_elems = [&](int lo, int hi) {
      return offs[size_t(hi - 1)] + cnts[size_t(hi - 1)] - offs[size_t(lo)];
    };
    struct Win {
      int partner, keep_lo, keep_hi, give_lo, give_hi;
    };
    std::vector<Win> wins;
    int lo = 0, hi = pof2;
    std::vector<Schedule::StepId> prevs = {prev};
    for (int mask = pof2 >> 1; mask >= 1; mask >>= 1, ++round) {
      Win wn;
      wn.partner = real_rank(newrank ^ mask);
      int mid = lo + (hi - lo) / 2;
      if ((newrank & mask) == 0) {
        wn.keep_lo = lo, wn.keep_hi = mid, wn.give_lo = mid, wn.give_hi = hi;
      } else {
        wn.keep_lo = mid, wn.keep_hi = hi, wn.give_lo = lo, wn.give_hi = mid;
      }
      Schedule::StepId snd =
          s.send(out + size_t(offs[size_t(wn.give_lo)]) * esize,
                 size_t(range_elems(wn.give_lo, wn.give_hi)) * esize,
                 wn.partner, round, prevs);
      Schedule::StepId rv =
          s.recv(tmp, size_t(range_elems(wn.keep_lo, wn.keep_hi)) * esize,
                 wn.partner, round, prevs);
      prevs = {s.reduce(tmp, out + size_t(offs[size_t(wn.keep_lo)]) * esize,
                        range_elems(wn.keep_lo, wn.keep_hi), type, op,
                        {snd, rv})};
      lo = wn.keep_lo, hi = wn.keep_hi;
      wins.push_back(wn);
    }
    for (auto it = wins.rbegin(); it != wins.rend(); ++it, ++round) {
      Schedule::StepId snd =
          s.send(out + size_t(offs[size_t(it->keep_lo)]) * esize,
                 size_t(range_elems(it->keep_lo, it->keep_hi)) * esize,
                 it->partner, round, prevs);
      Schedule::StepId rv =
          s.recv(out + size_t(offs[size_t(it->give_lo)]) * esize,
                 size_t(range_elems(it->give_lo, it->give_hi)) * esize,
                 it->partner, round, prevs);
      prevs = {snd, rv};
    }
    prev = Schedule::kNone;
    if (me < 2 * rem)
      s.send(out, bytes, me - 1, round, prevs);
  } else {
    round += 2 * log2p;  // rounds the participating ranks consumed
    s.recv(out, bytes, me + 1, round, {prev});
  }
}

}  // namespace

std::shared_ptr<Schedule> build_iallreduce(World* w, const detail::CommData& c,
                                           i64 seq, CollAlgo algo,
                                           const void* sendbuf, void* recvbuf,
                                           int count, Datatype type,
                                           ReduceOp op) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  switch (algo) {
    case CollAlgo::kLinear: {
      // Rooted linear reduce into recvbuf at rank 0, then linear bcast.
      Schedule::StepId last =
          sched_reduce_linear(*s, c, sendbuf, recvbuf, count, type, op, 0, 0);
      if (me == 0) {
        for (int dst = 1; dst < n; ++dst)
          s->send(recvbuf, bytes, dst, 1, {last});
      } else {
        // The contribution send reads sendbuf, which aliases recvbuf under
        // MPI_IN_PLACE — the result receive must wait for it.
        s->recv(recvbuf, bytes, 0, 1, {last});
      }
      break;
    }
    case CollAlgo::kBinomial: {
      BinomialReduce br =
          sched_reduce_binomial(*s, c, sendbuf, count, type, op, 0, 0);
      // Binomial bcast of recvbuf from rank 0 (round 1). recvbuf may alias
      // sendbuf (IN_PLACE); the reduce phase reads sendbuf only through its
      // initial accumulator copy, which br.last transitively orders before
      // the result receive.
      const int mr = me;  // root 0: relative == absolute
      Schedule::StepId got;
      if (mr == 0) {
        got = s->copy(br.acc, recvbuf, bytes, {br.last});
      } else {
        int lsb = mr & -mr;
        got = s->recv(recvbuf, bytes, mr - lsb, 1, {br.last});
      }
      int lsb = mr == 0 ? (1 << 30) : (mr & -mr);
      for (int k = 1; k < lsb && k < n; k <<= 1)
        if (mr + k < n) s->send(recvbuf, bytes, mr + k, 1, {got});
      break;
    }
    case CollAlgo::kRing:
      sched_allreduce_ring(*s, c, sendbuf, recvbuf, count, type, op);
      break;
    case CollAlgo::kRabenseifner:
      sched_allreduce_raben(*s, c, sendbuf, recvbuf, count, type, op);
      break;
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(bytes);
      Schedule::StepId cp = s->copy(sendbuf, g.slot(me), bytes, {});
      Schedule::StepId a0 = s->shm_arrive(0, bytes, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      Schedule::StepId prev = s->copy(g.slot(0), recvbuf, bytes, {w0});
      for (int src = 1; src < n; ++src)
        prev = s->reduce(g.slot(src), recvbuf, count, type, op, {prev});
      Schedule::StepId a1 = s->shm_arrive(1, bytes, {prev});
      s->shm_wait(1, {a1});
      break;
    }
    default:
      sched_allreduce_rdbl(*s, c, sendbuf, recvbuf, count, type, op);
      break;
  }
  return s;
}

std::shared_ptr<Schedule> build_iallgather(World* w, const detail::CommData& c,
                                           i64 seq, CollAlgo algo,
                                           const void* sendbuf, void* recvbuf,
                                           size_t block) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  u8* out = static_cast<u8*>(recvbuf);
  // Own block into position first; memmove handles the in-place alias.
  const Schedule::StepId own =
      s->copy(sendbuf, out + size_t(me) * block, block, {});
  switch (algo) {
    case CollAlgo::kLinear: {
      // Gather to rank 0, then one total-size bcast per destination.
      if (me == 0) {
        std::vector<Schedule::StepId> got = {own};
        for (int src = 1; src < n; ++src)
          got.push_back(
              s->recv(out + size_t(src) * block, block, src, 0, {}));
        for (int dst = 1; dst < n; ++dst)
          s->send(out, size_t(n) * block, dst, 1, got);
      } else {
        Schedule::StepId snd = s->send(sendbuf, block, 0, 0, {});
        // The total receive overwrites recvbuf, including the region the
        // contribution send may still be reading (in-place) — dep on both.
        s->recv(out, size_t(n) * block, 0, 1, {own, snd});
      }
      break;
    }
    case CollAlgo::kRecursiveDoubling: {
      if (!is_pof2(n)) {
        // Mirror allgather_rdbl: hypercube exchange needs a power of two.
        std::vector<Schedule::StepId> prevs = {own};
        const int right = (me + 1) % n, left = (me - 1 + n) % n;
        for (int st = 0, round = 0; st < n - 1; ++st, ++round) {
          int send_block = (me - st + n) % n;
          int recv_block = (me - st - 1 + n) % n;
          Schedule::StepId snd = s->send(out + size_t(send_block) * block,
                                         block, right, round, prevs);
          Schedule::StepId rv = s->recv(out + size_t(recv_block) * block,
                                        block, left, round, prevs);
          prevs = {snd, rv};
        }
        break;
      }
      std::vector<Schedule::StepId> prevs = {own};
      int round = 0;
      for (int mask = 1; mask < n; mask <<= 1, ++round) {
        int partner = me ^ mask;
        int my_start = me & ~(mask - 1);
        int peer_start = partner & ~(mask - 1);
        Schedule::StepId snd =
            s->send(out + size_t(my_start) * block, size_t(mask) * block,
                    partner, round, prevs);
        Schedule::StepId rv =
            s->recv(out + size_t(peer_start) * block, size_t(mask) * block,
                    partner, round, prevs);
        prevs = {snd, rv};
      }
      break;
    }
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(block);
      Schedule::StepId cp = s->copy(sendbuf, g.slot(me), block, {});
      Schedule::StepId a0 = s->shm_arrive(0, block, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      std::vector<Schedule::StepId> cps = {own};
      for (int src = 0; src < n; ++src) {
        if (src == me) continue;
        cps.push_back(
            s->copy(g.slot(src), out + size_t(src) * block, block, {w0}));
      }
      Schedule::StepId a1 = s->shm_arrive(1, block, cps);
      s->shm_wait(1, {a1});
      break;
    }
    default: {  // ring
      std::vector<Schedule::StepId> prevs = {own};
      const int right = (me + 1) % n, left = (me - 1 + n) % n;
      for (int st = 0, round = 0; st < n - 1; ++st, ++round) {
        int send_block = (me - st + n) % n;
        int recv_block = (me - st - 1 + n) % n;
        Schedule::StepId snd = s->send(out + size_t(send_block) * block,
                                       block, right, round, prevs);
        Schedule::StepId rv = s->recv(out + size_t(recv_block) * block, block,
                                      left, round, prevs);
        prevs = {snd, rv};
      }
      break;
    }
  }
  return s;
}

std::shared_ptr<Schedule> build_ialltoall(World* w, const detail::CommData& c,
                                          i64 seq, CollAlgo algo,
                                          const void* sendbuf, void* recvbuf,
                                          size_t sblock, size_t rblock) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  s->copy(in + size_t(me) * sblock, out + size_t(me) * rblock, sblock, {});
  if (algo == CollAlgo::kLinear) {
    // The natural DAG: every transfer independent.
    for (int src = 0; src < n; ++src)
      if (src != me)
        s->recv(out + size_t(src) * rblock, rblock, src, 0, {});
    for (int dst = 0; dst < n; ++dst)
      if (dst != me)
        s->send(in + size_t(dst) * sblock, sblock, dst, 0, {});
  } else {  // pairwise
    std::vector<Schedule::StepId> prevs;
    for (int st = 1; st < n; ++st) {
      int to = (me + st) % n;
      int from = (me - st + n) % n;
      Schedule::StepId snd =
          s->send(in + size_t(to) * sblock, sblock, to, st - 1, prevs);
      Schedule::StepId rv = s->recv(out + size_t(from) * rblock, rblock, from,
                                    st - 1, prevs);
      prevs = {snd, rv};
    }
  }
  return s;
}

std::shared_ptr<Schedule> build_ireduce_scatter(
    World* w, const detail::CommData& c, i64 seq, CollAlgo algo,
    const void* sendbuf, void* recvbuf, const int* recvcounts, Datatype type,
    ReduceOp op) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t esize = datatype_size(type);
  std::vector<int> offs(static_cast<size_t>(n));
  int total = 0;
  for (int i = 0; i < n; ++i) {
    offs[size_t(i)] = total;
    total += recvcounts[i];
  }
  const u8* in = static_cast<const u8*>(sendbuf != nullptr ? sendbuf : recvbuf);
  const size_t my_bytes = size_t(recvcounts[me]) * esize;
  switch (algo) {
    case CollAlgo::kLinear: {
      // Reduce the full vector to rank 0 (round 0), then scatterv (round 1).
      if (me == 0) {
        u8* full = s->scratch(size_t(total) * esize);
        Schedule::StepId last =
            sched_reduce_linear(*s, c, in, full, total, type, op, 0, 0);
        for (int dst = 1; dst < n; ++dst)
          s->send(full + size_t(offs[size_t(dst)]) * esize,
                  size_t(recvcounts[dst]) * esize, dst, 1, {last});
        s->copy(full, recvbuf, my_bytes, {last});
      } else {
        Schedule::StepId last =
            sched_reduce_linear(*s, c, in, nullptr, total, type, op, 0, 0);
        // In-place input lives in recvbuf: the result receive overwrites a
        // region the contribution send may still be reading.
        s->recv(recvbuf, my_bytes, 0, 1, {last});
      }
      break;
    }
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(size_t(total) * esize);
      Schedule::StepId cp =
          s->copy(in, g.slot(me), size_t(total) * esize, {});
      Schedule::StepId a0 = s->shm_arrive(0, size_t(total) * esize, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      const size_t my_off = size_t(offs[size_t(me)]) * esize;
      Schedule::StepId prev =
          s->copy(g.slot(0) + my_off, recvbuf, my_bytes, {w0});
      for (int src = 1; src < n; ++src)
        prev = s->reduce(g.slot(src) + my_off, recvbuf, recvcounts[me], type,
                         op, {prev});
      Schedule::StepId a1 = s->shm_arrive(1, my_bytes, {prev});
      s->shm_wait(1, {a1});
      break;
    }
    default: {  // pairwise
      // Accumulate into scratch: with in-place input, recvbuf still feeds
      // outgoing chunks during the exchange, so it is written only at the
      // end, after every send has read its chunk.
      u8* acc = s->scratch(my_bytes);
      Schedule::StepId prev =
          s->copy(in + size_t(offs[size_t(me)]) * esize, acc, my_bytes, {});
      std::vector<Schedule::StepId> finals;
      for (int st = 1; st < n; ++st) {
        int to = (me + st) % n;
        int from = (me - st + n) % n;
        finals.push_back(s->send(in + size_t(offs[size_t(to)]) * esize,
                                 size_t(recvcounts[to]) * esize, to, st - 1,
                                 {}));
        u8* tmp = s->scratch(my_bytes);
        Schedule::StepId rv = s->recv(tmp, my_bytes, from, st - 1, {});
        prev = s->reduce(tmp, acc, recvcounts[me], type, op, {rv, prev});
      }
      finals.push_back(prev);
      s->copy(acc, recvbuf, my_bytes, finals);
      break;
    }
  }
  return s;
}

std::shared_ptr<Schedule> build_iscan(World* w, const detail::CommData& c,
                                      i64 seq, CollAlgo algo,
                                      const void* sendbuf, void* recvbuf,
                                      int count, Datatype type, ReduceOp op) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  switch (algo) {
    case CollAlgo::kLinear: {
      // Chain: recv prefix from me-1, fold own contribution, pass it on.
      u8* own = s->scratch(bytes);
      Schedule::StepId cp = s->copy(sendbuf, own, bytes, {});
      Schedule::StepId prev;
      if (me > 0) {
        // sendbuf may alias recvbuf (in-place): the prefix receive must
        // wait for the contribution snapshot.
        Schedule::StepId rv = s->recv(recvbuf, bytes, me - 1, 0, {cp});
        prev = s->reduce(own, recvbuf, count, type, op, {rv});
      } else {
        prev = s->copy(own, recvbuf, bytes, {cp});
      }
      if (me < n - 1) s->send(recvbuf, bytes, me + 1, 0, {prev});
      break;
    }
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(bytes);
      Schedule::StepId cp = s->copy(sendbuf, g.slot(me), bytes, {});
      Schedule::StepId a0 = s->shm_arrive(0, bytes, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      Schedule::StepId prev = s->copy(g.slot(0), recvbuf, bytes, {w0});
      for (int src = 1; src <= me; ++src)
        prev = s->reduce(g.slot(src), recvbuf, count, type, op, {prev});
      Schedule::StepId a1 = s->shm_arrive(1, bytes, {prev});
      s->shm_wait(1, {a1});
      break;
    }
    default: {  // recursive doubling
      // partial = reduction over the contiguous rank window ending at me;
      // recvbuf accumulates everything at or below me.
      Schedule::StepId res_prev = s->copy(sendbuf, recvbuf, bytes, {});
      u8* partial = s->scratch(bytes);
      Schedule::StepId part_prev = s->copy(recvbuf, partial, bytes, {res_prev});
      int round = 0;
      for (int mask = 1; mask < n; mask <<= 1, ++round) {
        const int up = me + mask, down = me - mask;
        Schedule::StepId rv = Schedule::kNone;
        u8* tmp = nullptr;
        if (down >= 0) {
          tmp = s->scratch(bytes);
          rv = s->recv(tmp, bytes, down, round, {});
        }
        Schedule::StepId snd = Schedule::kNone;
        if (up < n) snd = s->send(partial, bytes, up, round, {part_prev});
        if (down >= 0) {
          res_prev = s->reduce(tmp, recvbuf, count, type, op, {rv, res_prev});
          part_prev =
              s->reduce(tmp, partial, count, type, op, {rv, part_prev, snd});
        } else if (snd != Schedule::kNone) {
          part_prev = snd;
        }
      }
      break;
    }
  }
  return s;
}

std::shared_ptr<Schedule> build_iexscan(World* w, const detail::CommData& c,
                                        i64 seq, CollAlgo algo,
                                        const void* sendbuf, void* recvbuf,
                                        int count, Datatype type,
                                        ReduceOp op) {
  auto s = std::make_shared<Schedule>(w, c, seq);
  const int n = int(c.world_ranks.size());
  const int me = c.my_comm_rank;
  const size_t bytes = size_t(count) * datatype_size(type);
  switch (algo) {
    case CollAlgo::kLinear: {
      u8* own = s->scratch(bytes);
      Schedule::StepId cp = s->copy(sendbuf, own, bytes, {});
      Schedule::StepId rv = Schedule::kNone;
      if (me > 0)  // rank 0's recvbuf stays untouched (MPI semantics)
        rv = s->recv(recvbuf, bytes, me - 1, 0, {cp});
      if (me < n - 1) {
        if (me == 0) {
          s->send(own, bytes, 1, 0, {cp});
        } else {
          u8* incl = s->scratch(bytes);
          Schedule::StepId c1 = s->copy(recvbuf, incl, bytes, {rv});
          Schedule::StepId red =
              s->reduce(own, incl, count, type, op, {c1});
          s->send(incl, bytes, me + 1, 0, {red});
        }
      }
      break;
    }
    case CollAlgo::kShm: {
      IcollShmGroup& g = s->shm_group(bytes);
      Schedule::StepId cp = s->copy(sendbuf, g.slot(me), bytes, {});
      Schedule::StepId a0 = s->shm_arrive(0, bytes, {cp});
      Schedule::StepId w0 = s->shm_wait(0, {a0});
      Schedule::StepId a1;
      if (me > 0) {
        Schedule::StepId prev = s->copy(g.slot(0), recvbuf, bytes, {w0});
        for (int src = 1; src < me; ++src)
          prev = s->reduce(g.slot(src), recvbuf, count, type, op, {prev});
        a1 = s->shm_arrive(1, bytes, {prev});
      } else {
        a1 = s->shm_arrive(1, 0, {w0});
      }
      s->shm_wait(1, {a1});
      break;
    }
    default: {  // recursive doubling
      u8* partial = s->scratch(bytes);
      Schedule::StepId part_prev = s->copy(sendbuf, partial, bytes, {});
      // Under in-place aliasing the first recvbuf write must follow the
      // contribution snapshot; chaining from the copy covers it.
      Schedule::StepId res_prev = part_prev;
      bool have_result = false;
      int round = 0;
      for (int mask = 1; mask < n; mask <<= 1, ++round) {
        const int up = me + mask, down = me - mask;
        Schedule::StepId rv = Schedule::kNone;
        u8* tmp = nullptr;
        if (down >= 0) {
          tmp = s->scratch(bytes);
          rv = s->recv(tmp, bytes, down, round, {});
        }
        Schedule::StepId snd = Schedule::kNone;
        if (up < n) snd = s->send(partial, bytes, up, round, {part_prev});
        if (down >= 0) {
          // Incoming windows tile [0, me) exactly across the rounds.
          res_prev = have_result
                         ? s->reduce(tmp, recvbuf, count, type, op,
                                     {rv, res_prev})
                         : s->copy(tmp, recvbuf, bytes, {rv, res_prev});
          have_result = true;
          part_prev =
              s->reduce(tmp, partial, count, type, op, {rv, part_prev, snd});
        } else if (snd != Schedule::kNone) {
          part_prev = snd;
        }
      }
      break;
    }
  }
  return s;
}

}  // namespace mpiwasm::simmpi::coll
