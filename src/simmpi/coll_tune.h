// Online autotuner for the kAuto collective-algorithm selection.
//
// The static selection table (coll_algos.cc select()) encodes one machine's
// tradeoffs; whenever the host's oversubscription profile differs, it
// guesses wrong. The Autotuner wraps it in a measurement phase: for each
// (collective, size-bin, comm-size) key the first kExploreRounds passes
// over the candidate list rotate deterministically through the algorithms,
// measured timings feed an EWMA per candidate, and once the exploration
// budget is spent the cheapest candidate is locked in. The learned table
// persists next to the JIT code cache (keyed by a host signature) so
// subsequent runs start tuned.
//
// Rank consistency: a collective's algorithm choice MUST agree across the
// communicator or the ranks deadlock mid-algorithm. Exploration choices
// therefore depend only on the per-communicator call index (identical on
// every rank by MPI's matching-call-order rule), never on the measured
// timings; the winner is computed once, under the table mutex, and every
// later call — whatever rank, whatever its local timing view — reads that
// locked value.
#pragma once

#include <map>
#include <mutex>
#include <span>
#include <string>

#include "simmpi/types.h"

namespace mpiwasm::simmpi::coll {

enum class CollOp : i32;  // coll_algos.h

class Autotuner {
 public:
  /// Exploration passes over the candidate list before locking a winner.
  /// Four passes: on an oversubscribed host a single descheduled thread
  /// inflates one sample by an order of magnitude, and two samples per
  /// candidate lock wrong winners often enough to show up in bench_coll's
  /// auto column.
  static constexpr int kExploreRounds = 4;
  /// EWMA smoothing factor for measured timings.
  static constexpr f64 kAlpha = 0.25;
  /// A candidate displaces the static table's pick only when its EWMA is
  /// below kLockMargin of the pick's own — per-call latency samples miss
  /// cross-call pipelining and carry scheduler noise, so algorithms within
  /// ~2x of each other per call routinely differ the other way on loop
  /// throughput. The mispicks the tuner exists to catch (a static table
  /// built for a differently-subscribed host) show up well beyond 2x.
  static constexpr f64 kLockMargin = 0.5;

  explicit Autotuner(std::string signature);

  /// Ties a persisted table to the machine it was measured on: hardware
  /// thread count, interconnect profile, and rank layout.
  static std::string host_signature(int hw_threads, const std::string& profile,
                                    int world_size);

  /// Packs (op, comm size, log2 size bin) into a table key.
  static u64 key(CollOp op, int nranks, size_t bytes);

  /// The algorithm for call number `call_idx` on `key`. Preloaded winners
  /// (from load()) apply from call 0. Otherwise calls below the exploration
  /// budget return candidates[call_idx % n] — even when a winner was locked
  /// concurrently via another communicator sharing the key, because the
  /// choice must be a pure function of the (rank-consistent) call index —
  /// and later calls return the locked EWMA argmin, computed write-once by
  /// the first arriver. `fallback` (the static table's pick) wins when no
  /// candidate has a recorded timing, and keeps winning unless the argmin
  /// beats its EWMA by the kLockMargin hysteresis — unconditionally so
  /// when the fallback itself was never sampled. `*exploring` tells the caller to
  /// measure the call and record() it.
  CollAlgo choose(u64 key, u64 call_idx, std::span<const CollAlgo> candidates,
                  CollAlgo fallback, bool* exploring);

  /// Feeds one measured duration into the EWMA for (key, algo).
  void record(u64 key, CollAlgo algo, f64 us);

  /// The locked winner for `key`; kAuto while still exploring.
  CollAlgo winner(u64 key) const;
  /// EWMA lookup for tests; negative when no timing was recorded.
  f64 ewma_us(u64 key, CollAlgo algo) const;

  /// Loads locked winners from `path`; false (table untouched) when the
  /// file is missing, malformed, or carries a different host signature.
  bool load(const std::string& path);
  /// Persists locked winners atomically (temp file + rename). False on I/O
  /// failure.
  bool save(const std::string& path) const;
  /// Whether a winner was locked since construction/load (worth saving).
  bool dirty() const;

  const std::string& signature() const { return sig_; }

 private:
  struct Entry {
    std::map<CollAlgo, f64> ewma;  // algo -> smoothed microseconds
    CollAlgo locked = CollAlgo::kAuto;  // write-once once set
    bool preloaded = false;  // locked came from a persisted table
  };

  mutable std::mutex mu_;
  std::string sig_;
  std::map<u64, Entry> table_;
  bool dirty_ = false;
};

}  // namespace mpiwasm::simmpi::coll
