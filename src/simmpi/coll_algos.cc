#include "simmpi/coll_algos.h"

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string_view>

#include "simmpi/coll_tree.h"
#include "simmpi/reduce_ops.h"
#include "support/log.h"
#include "support/timing.h"

namespace mpiwasm::simmpi {

// ---------------------------------------------------------------------------
// CollTuning::from_env (declared in types.h; lives here next to the names)
// ---------------------------------------------------------------------------

namespace coll_detail {

/// The single CollOp -> CollTuning-field mapping shared by from_env,
/// forced_algo, and forced_tuning (one row to add per new collective).
struct CollVar {
  coll::CollOp op;
  const char* env;
  CollAlgo CollTuning::*field;
};
constexpr CollVar kCollVars[] = {
    {coll::CollOp::kBarrier, "MPIWASM_COLL_BARRIER", &CollTuning::barrier},
    {coll::CollOp::kBcast, "MPIWASM_COLL_BCAST", &CollTuning::bcast},
    {coll::CollOp::kReduce, "MPIWASM_COLL_REDUCE", &CollTuning::reduce},
    {coll::CollOp::kAllreduce, "MPIWASM_COLL_ALLREDUCE",
     &CollTuning::allreduce},
    {coll::CollOp::kGather, "MPIWASM_COLL_GATHER", &CollTuning::gather},
    {coll::CollOp::kScatter, "MPIWASM_COLL_SCATTER", &CollTuning::scatter},
    {coll::CollOp::kAllgather, "MPIWASM_COLL_ALLGATHER",
     &CollTuning::allgather},
    {coll::CollOp::kAlltoall, "MPIWASM_COLL_ALLTOALL", &CollTuning::alltoall},
    {coll::CollOp::kReduceScatter, "MPIWASM_COLL_REDUCE_SCATTER",
     &CollTuning::reduce_scatter},
    {coll::CollOp::kScan, "MPIWASM_COLL_SCAN", &CollTuning::scan},
    {coll::CollOp::kExscan, "MPIWASM_COLL_EXSCAN", &CollTuning::exscan},
};
static_assert(std::size(kCollVars) == size_t(coll::kNumCollOps));

bool algo_supported(coll::CollOp op, CollAlgo a) {
  if (a == CollAlgo::kAuto) return true;
  for (CollAlgo v : coll::algos_for(op))
    if (v == a) return true;
  return false;
}

}  // namespace coll_detail

CollTuning CollTuning::from_env(CollTuning base) {
  for (const auto& v : coll_detail::kCollVars) {
    const char* s = std::getenv(v.env);
    if (s == nullptr || *s == '\0') continue;
    CollAlgo a;
    if (!coll::algo_from_name(s, &a)) {
      MW_WARN("ignoring unknown algorithm '" << s << "' in " << v.env);
    } else if (!coll_detail::algo_supported(v.op, a)) {
      // Fail at startup, not as a fatal MpiError mid-simulation.
      MW_WARN("ignoring " << v.env << "=" << s << ": "
                          << coll::coll_name(v.op) << " has no such algorithm");
    } else {
      base.*v.field = a;
    }
  }
  if (const char* s = std::getenv("MPIWASM_COLL_SHM"); s != nullptr) {
    std::string_view v(s);
    base.enable_shm = !(v == "0" || v == "false" || v == "off");
  }
  if (const char* s = std::getenv("MPIWASM_COLL_SHM_MAX"); s != nullptr) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(s, &end, 10);
    if (end != s) base.shm_max_bytes = size_t(n);
  }
  if (const char* s = std::getenv("MPIWASM_COLL_AUTOTUNE"); s != nullptr) {
    std::string_view v(s);
    base.autotune = !(v == "0" || v == "false" || v == "off");
  }
  return base;
}

namespace coll {

// (Tree/chunk arithmetic shared with the schedule twins: coll_tree.h.)

// ---------------------------------------------------------------------------
// Names, registry, selection
// ---------------------------------------------------------------------------

const char* coll_name(CollOp c) {
  switch (c) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kGather: return "gather";
    case CollOp::kScatter: return "scatter";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kAlltoall: return "alltoall";
    case CollOp::kReduceScatter: return "reduce_scatter";
    case CollOp::kScan: return "scan";
    case CollOp::kExscan: return "exscan";
  }
  return "?";
}

const char* algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kDissemination: return "dissemination";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecursiveDoubling: return "rdbl";
    case CollAlgo::kRabenseifner: return "raben";
    case CollAlgo::kPairwise: return "pairwise";
    case CollAlgo::kShm: return "shm";
  }
  return "?";
}

bool algo_from_name(std::string_view name, CollAlgo* out) {
  if (name == "auto") *out = CollAlgo::kAuto;
  else if (name == "linear") *out = CollAlgo::kLinear;
  else if (name == "binomial" || name == "tree") *out = CollAlgo::kBinomial;
  else if (name == "dissemination" || name == "dissem")
    *out = CollAlgo::kDissemination;
  else if (name == "ring") *out = CollAlgo::kRing;
  else if (name == "rdbl" || name == "recursive_doubling")
    *out = CollAlgo::kRecursiveDoubling;
  else if (name == "raben" || name == "rabenseifner")
    *out = CollAlgo::kRabenseifner;
  else if (name == "pairwise") *out = CollAlgo::kPairwise;
  else if (name == "shm") *out = CollAlgo::kShm;
  else return false;
  return true;
}

std::span<const CollAlgo> algos_for(CollOp c) {
  using A = CollAlgo;
  static constexpr A kBarrierA[] = {A::kLinear, A::kDissemination, A::kShm};
  static constexpr A kBcastA[] = {A::kLinear, A::kBinomial, A::kShm};
  static constexpr A kReduceA[] = {A::kLinear, A::kBinomial, A::kShm};
  static constexpr A kAllreduceA[] = {A::kLinear, A::kBinomial,
                                      A::kRecursiveDoubling, A::kRing,
                                      A::kRabenseifner, A::kShm};
  static constexpr A kGatherA[] = {A::kLinear, A::kBinomial, A::kShm};
  static constexpr A kAllgatherA[] = {A::kLinear, A::kRing,
                                      A::kRecursiveDoubling, A::kShm};
  static constexpr A kAlltoallA[] = {A::kLinear, A::kPairwise};
  static constexpr A kRsA[] = {A::kLinear, A::kPairwise, A::kShm};
  static constexpr A kScanA[] = {A::kLinear, A::kRecursiveDoubling, A::kShm};
  switch (c) {
    case CollOp::kBarrier: return kBarrierA;
    case CollOp::kBcast: return kBcastA;
    case CollOp::kReduce: return kReduceA;
    case CollOp::kAllreduce: return kAllreduceA;
    case CollOp::kGather: return kGatherA;
    case CollOp::kScatter: return kGatherA;
    case CollOp::kAllgather: return kAllgatherA;
    case CollOp::kAlltoall: return kAlltoallA;
    case CollOp::kReduceScatter: return kRsA;
    case CollOp::kScan: return kScanA;
    case CollOp::kExscan: return kScanA;
  }
  return {};
}

CollAlgo forced_algo(const CollTuning& t, CollOp c) {
  for (const auto& v : coll_detail::kCollVars)
    if (v.op == c) return t.*v.field;
  return CollAlgo::kAuto;
}

CollTuning forced_tuning(CollOp c, CollAlgo algo) {
  CollTuning t;
  for (const auto& v : coll_detail::kCollVars)
    if (v.op == c) t.*v.field = algo;
  return t;
}

CollAlgo select(CollOp c, const CollTuning& t, int nranks, size_t bytes,
                bool shm_ok, int hw_threads) {
  CollAlgo f = forced_algo(t, c);
  // A forced shm choice degrades to the auto table when the payload does
  // not fit a slot (or the context is absent) instead of failing the call.
  if (f != CollAlgo::kAuto && !(f == CollAlgo::kShm && !shm_ok)) {
    for (CollAlgo a : algos_for(c))
      if (a == f) return f;
    throw MpiError(std::string("collective '") + coll_name(c) +
                   "' has no '" + algo_name(f) + "' algorithm");
  }
  // Topology term: with more rank threads than cores the fan-in barrier
  // costs a full scheduler round per epoch, while tree algorithms over
  // the mailbox path pipeline through blocked threads. Real MPIs make the
  // same intra-node/ppn distinction when picking collective algorithms.
  static const int host_hw = int(std::thread::hardware_concurrency());
  const int hw = hw_threads > 0 ? hw_threads : host_hw;
  const bool oversubscribed = hw > 0 && nranks > hw;
  switch (c) {
    case CollOp::kBarrier:
      // One epoch beats log2(n) mailbox rounds even when oversubscribed.
      return shm_ok ? CollAlgo::kShm : CollAlgo::kDissemination;
    case CollOp::kBcast:
    case CollOp::kReduce:
      if (shm_ok && !oversubscribed) return CollAlgo::kShm;
      return CollAlgo::kBinomial;
    case CollOp::kAllreduce:
      // Every rank reduces all n slots, amortizing the barrier epochs —
      // shm wins even when oversubscribed (unlike the rooted trees).
      if (shm_ok) return CollAlgo::kShm;
      if (oversubscribed && bytes <= 32 * 1024) return CollAlgo::kBinomial;
      // MPICH-style: latency-bound sizes use recursive doubling, beyond
      // that the bandwidth-optimal reduce-scatter + allgather.
      return bytes <= 32 * 1024 ? CollAlgo::kRecursiveDoubling
                                : CollAlgo::kRabenseifner;
    case CollOp::kGather:
    case CollOp::kScatter:
      if (shm_ok && !oversubscribed) return CollAlgo::kShm;
      // Binomial trees stage subtree copies; past ~1 MiB total the linear
      // algorithm's single direct copy per rank wins.
      return bytes * size_t(nranks) <= (size_t(1) << 20) ? CollAlgo::kBinomial
                                                         : CollAlgo::kLinear;
    case CollOp::kAllgather:
      // n blocks cross the segment, amortizing the barrier epochs; shm
      // stays ahead of the ring even when oversubscribed.
      if (shm_ok) return CollAlgo::kShm;
      return bytes * size_t(nranks) <= 128 * 1024 && is_pof2(nranks)
                 ? CollAlgo::kRecursiveDoubling
                 : CollAlgo::kRing;
    case CollOp::kAlltoall:
      return CollAlgo::kPairwise;
    case CollOp::kReduceScatter:
      if (shm_ok) return CollAlgo::kShm;
      return bytes <= 16 * 1024 ? CollAlgo::kLinear : CollAlgo::kPairwise;
    case CollOp::kScan:
    case CollOp::kExscan:
      // The linear chain pipelines perfectly under oversubscription.
      if (oversubscribed) return CollAlgo::kLinear;
      return shm_ok ? CollAlgo::kShm : CollAlgo::kRecursiveDoubling;
  }
  return CollAlgo::kLinear;
}

// ---------------------------------------------------------------------------
// Engine: shared plumbing
// ---------------------------------------------------------------------------

void Engine::charge(Rank& r, size_t bytes) {
  spin_for_ns(r.world_->profile().message_cost_ns(bytes));
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Engine::barrier_dissemination(Rank& r, const detail::CommData& c) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  u8 token = 1;
  for (int k = 1; k < n; k <<= 1) {
    int to = (me + k) % n;
    int from = (me - k + n) % n;
    u8 dummy;
    Request req = r.irecv_internal(&dummy, 1, from, kCollectiveTag, c);
    r.send_internal(&token, 1, to, kCollectiveTag, c);
    r.wait(req);
  }
}

void Engine::barrier_linear(Rank& r, const detail::CommData& c) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  u8 token = 1;
  if (me == 0) {
    for (int src = 1; src < n; ++src)
      r.recv_internal(&token, 1, src, kCollectiveTag, c);
    for (int dst = 1; dst < n; ++dst)
      r.send_internal(&token, 1, dst, kCollectiveTag, c);
  } else {
    r.send_internal(&token, 1, 0, kCollectiveTag, c);
    r.recv_internal(&token, 1, 0, kCollectiveTag, c);
  }
}

void Engine::barrier_shm(Rank& r, const detail::CommData& c) {
  charge(r, 0);
  c.coll->barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void Engine::bcast_linear(Rank& r, const detail::CommData& c, void* buf,
                          size_t bytes, int root) {
  int n = int(c.world_ranks.size());
  if (c.my_comm_rank == root) {
    for (int dst = 0; dst < n; ++dst)
      if (dst != root) r.send_internal(buf, bytes, dst, kCollectiveTag, c);
  } else {
    r.recv_internal(buf, bytes, root, kCollectiveTag, c);
  }
}

void Engine::bcast_binomial(Rank& r, const detail::CommData& c, void* buf,
                            size_t bytes, int root) {
  int n = int(c.world_ranks.size());
  int me = rel(c.my_comm_rank, root, n);
  // Relative rank me receives from me - 2^j (lowest set bit), then
  // forwards to me + 2^k for growing k below that bit.
  if (me != 0) {
    int lsb = me & -me;
    r.recv_internal(buf, bytes, unrel(me - lsb, root, n), kCollectiveTag, c);
  }
  int lsb = me == 0 ? (1 << 30) : (me & -me);
  for (int k = 1; k < lsb && k < n; k <<= 1) {
    if (me + k < n)
      r.send_internal(buf, bytes, unrel(me + k, root, n), kCollectiveTag, c);
  }
}

void Engine::bcast_shm(Rank& r, const detail::CommData& c, void* buf,
                       size_t bytes, int root) {
  CollectiveContext& ctx = *c.coll;
  if (c.my_comm_rank == root) {
    std::memcpy(ctx.slot(root), buf, bytes);
    charge(r, bytes);
  }
  ctx.barrier_wait(*r.world_);
  if (c.my_comm_rank != root) {
    std::memcpy(buf, ctx.slot(root), bytes);
    charge(r, bytes);
  }
  // Keeps the root from reusing its slot before every reader is done.
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

void Engine::reduce_linear(Rank& r, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, int count,
                           Datatype type, ReduceOp op, int root) {
  int n = int(c.world_ranks.size());
  size_t bytes = size_t(count) * datatype_size(type);
  if (c.my_comm_rank != root) {
    r.send_internal(sendbuf, bytes, root, kCollectiveTag, c);
    return;
  }
  // Canonical left-to-right combine over comm-rank order — the reference
  // order every other algorithm is differential-tested against.
  std::vector<u8> own(bytes);
  std::memcpy(own.data(), sendbuf, bytes);  // sendbuf may alias recvbuf
  std::vector<u8> tmp(bytes);
  u8* out = static_cast<u8*>(recvbuf);
  for (int src = 0; src < n; ++src) {
    const u8* contrib;
    if (src == root) {
      contrib = own.data();
    } else {
      r.recv_internal(tmp.data(), bytes, src, kCollectiveTag, c);
      contrib = tmp.data();
    }
    if (src == 0)
      std::memcpy(out, contrib, bytes);
    else
      apply_reduce(op, type, contrib, out, count);
  }
}

void Engine::reduce_binomial(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, int count,
                             Datatype type, ReduceOp op, int root) {
  int n = int(c.world_ranks.size());
  size_t bytes = size_t(count) * datatype_size(type);
  int me = rel(c.my_comm_rank, root, n);
  std::vector<u8> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  std::vector<u8> incoming(bytes);
  // Receive from children (me + 2^k), fold, then send to parent (me - lsb).
  for (int k = 1; k < n; k <<= 1) {
    if ((me & k) != 0) {
      r.send_internal(acc.data(), bytes, unrel(me - k, root, n),
                      kCollectiveTag, c);
      break;
    }
    if (me + k < n) {
      r.recv_internal(incoming.data(), bytes, unrel(me + k, root, n),
                      kCollectiveTag, c);
      apply_reduce(op, type, incoming.data(), acc.data(), count);
    }
  }
  if (me == 0 && recvbuf != nullptr) std::memcpy(recvbuf, acc.data(), bytes);
}

void Engine::reduce_shm(Rank& r, const detail::CommData& c,
                        const void* sendbuf, void* recvbuf, int count,
                        Datatype type, ReduceOp op, int root) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  size_t bytes = size_t(count) * datatype_size(type);
  std::memcpy(ctx.slot(c.my_comm_rank), sendbuf, bytes);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
  if (c.my_comm_rank == root) {
    u8* out = static_cast<u8*>(recvbuf);
    std::memcpy(out, ctx.slot(0), bytes);
    for (int src = 1; src < n; ++src)
      apply_reduce(op, type, ctx.slot(src), out, count);
    charge(r, bytes);
  }
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

void Engine::allreduce_linear(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf, int count,
                              Datatype type, ReduceOp op) {
  size_t bytes = size_t(count) * datatype_size(type);
  reduce_linear(r, c, sendbuf, recvbuf, count, type, op, 0);
  bcast_linear(r, c, recvbuf, bytes, 0);
}

void Engine::allreduce_binomial(Rank& r, const detail::CommData& c,
                                const void* sendbuf, void* recvbuf, int count,
                                Datatype type, ReduceOp op) {
  // Binomial-tree reduce + binomial-tree bcast: 2 (n - 1) total messages
  // with subtree pipelining — the strongest choice when rank threads
  // outnumber cores and barrier-style global synchronization stalls.
  size_t bytes = size_t(count) * datatype_size(type);
  reduce_binomial(r, c, sendbuf, recvbuf, count, type, op, 0);
  bcast_binomial(r, c, recvbuf, bytes, 0);
}

void Engine::allreduce_rdbl(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, int count,
                            Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
  std::vector<u8> tmp(bytes);
  int pof2 = floor_pof2(n);
  int rem = n - pof2;
  // Fold the rem extra ranks into their even partners' odd neighbours.
  int newrank;
  if (me < 2 * rem) {
    if ((me % 2) == 0) {
      r.send_internal(recvbuf, bytes, me + 1, kCollectiveTag, c);
      newrank = -1;
    } else {
      r.recv_internal(tmp.data(), bytes, me - 1, kCollectiveTag, c);
      apply_reduce(op, type, tmp.data(), recvbuf, count);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      int newpartner = newrank ^ mask;
      int partner = newpartner < rem ? newpartner * 2 + 1 : newpartner + rem;
      Request req =
          r.irecv_internal(tmp.data(), bytes, partner, kCollectiveTag, c);
      r.send_internal(recvbuf, bytes, partner, kCollectiveTag, c);
      r.wait(req);
      apply_reduce(op, type, tmp.data(), recvbuf, count);
    }
  }
  // Hand the result back to the folded-out even ranks.
  if (me < 2 * rem) {
    if ((me % 2) == 0)
      r.recv_internal(recvbuf, bytes, me + 1, kCollectiveTag, c);
    else
      r.send_internal(recvbuf, bytes, me - 1, kCollectiveTag, c);
  }
}

void Engine::allreduce_ring(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, int count,
                            Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, size_t(count) * esize);
  std::vector<int> cnts, offs;
  chunk_counts(count, n, &cnts, &offs);
  std::vector<u8> tmp((size_t(count) / n + 1) * esize);
  u8* out = static_cast<u8*>(recvbuf);
  int right = (me + 1) % n, left = (me - 1 + n) % n;
  // Reduce-scatter phase: each chunk circulates the ring accumulating.
  for (int s = 0; s < n - 1; ++s) {
    int send_chunk = (me - s + n) % n;
    int recv_chunk = (me - s - 1 + n) % n;
    Request req =
        r.irecv_internal(tmp.data(), size_t(cnts[recv_chunk]) * esize, left,
                         kCollectiveTag, c);
    r.send_internal(out + size_t(offs[send_chunk]) * esize,
                    size_t(cnts[send_chunk]) * esize, right, kCollectiveTag, c);
    r.wait(req);
    apply_reduce(op, type, tmp.data(), out + size_t(offs[recv_chunk]) * esize,
                 cnts[recv_chunk]);
  }
  // Allgather phase: rank me now owns complete chunk (me + 1) % n.
  for (int s = 0; s < n - 1; ++s) {
    int send_chunk = (me + 1 - s + n) % n;
    int recv_chunk = (me - s + n) % n;
    Request req = r.irecv_internal(out + size_t(offs[recv_chunk]) * esize,
                                   size_t(cnts[recv_chunk]) * esize, left,
                                   kCollectiveTag, c);
    r.send_internal(out + size_t(offs[send_chunk]) * esize,
                    size_t(cnts[send_chunk]) * esize, right, kCollectiveTag, c);
    r.wait(req);
  }
}

void Engine::allreduce_rabenseifner(Rank& r, const detail::CommData& c,
                                    const void* sendbuf, void* recvbuf,
                                    int count, Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int pof2 = floor_pof2(n);
  if (count < pof2) {
    // Chunks would be empty; recursive doubling is the right tool anyway.
    allreduce_rdbl(r, c, sendbuf, recvbuf, count, type, op);
    return;
  }
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  size_t bytes = size_t(count) * esize;
  if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
  std::vector<u8> tmp(bytes);
  u8* out = static_cast<u8*>(recvbuf);
  int rem = n - pof2;
  int newrank;
  if (me < 2 * rem) {
    if ((me % 2) == 0) {
      r.send_internal(out, bytes, me + 1, kCollectiveTag, c);
      newrank = -1;
    } else {
      r.recv_internal(tmp.data(), bytes, me - 1, kCollectiveTag, c);
      apply_reduce(op, type, tmp.data(), out, count);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  if (newrank >= 0) {
    auto real_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    std::vector<int> cnts, offs;
    chunk_counts(count, pof2, &cnts, &offs);
    auto range_elems = [&](int lo, int hi) {
      return offs[hi - 1] + cnts[hi - 1] - offs[lo];
    };
    // Reduce-scatter by recursive halving; remember each step's window so
    // the allgather phase can replay it in reverse.
    struct Step {
      int partner, keep_lo, keep_hi, give_lo, give_hi;
    };
    std::vector<Step> steps;
    int lo = 0, hi = pof2;
    for (int mask = pof2 >> 1; mask >= 1; mask >>= 1) {
      int partner = real_rank(newrank ^ mask);
      int mid = lo + (hi - lo) / 2;
      Step st;
      st.partner = partner;
      if ((newrank & mask) == 0) {
        st.keep_lo = lo, st.keep_hi = mid, st.give_lo = mid, st.give_hi = hi;
      } else {
        st.keep_lo = mid, st.keep_hi = hi, st.give_lo = lo, st.give_hi = mid;
      }
      Request req = r.irecv_internal(
          tmp.data(), size_t(range_elems(st.keep_lo, st.keep_hi)) * esize,
          partner, kCollectiveTag, c);
      r.send_internal(out + size_t(offs[st.give_lo]) * esize,
                      size_t(range_elems(st.give_lo, st.give_hi)) * esize,
                      partner, kCollectiveTag, c);
      r.wait(req);
      apply_reduce(op, type, tmp.data(), out + size_t(offs[st.keep_lo]) * esize,
                   range_elems(st.keep_lo, st.keep_hi));
      lo = st.keep_lo, hi = st.keep_hi;
      steps.push_back(st);
    }
    // Allgather by recursive doubling: reverse of the halving schedule.
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
      Request req = r.irecv_internal(
          out + size_t(offs[it->give_lo]) * esize,
          size_t(range_elems(it->give_lo, it->give_hi)) * esize, it->partner,
          kCollectiveTag, c);
      r.send_internal(out + size_t(offs[it->keep_lo]) * esize,
                      size_t(range_elems(it->keep_lo, it->keep_hi)) * esize,
                      it->partner, kCollectiveTag, c);
      r.wait(req);
    }
  }
  if (me < 2 * rem) {
    if ((me % 2) == 0)
      r.recv_internal(out, bytes, me + 1, kCollectiveTag, c);
    else
      r.send_internal(out, bytes, me - 1, kCollectiveTag, c);
  }
}

void Engine::allreduce_shm(Rank& r, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, int count,
                           Datatype type, ReduceOp op) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  size_t bytes = size_t(count) * datatype_size(type);
  std::memcpy(ctx.slot(c.my_comm_rank), sendbuf, bytes);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out, ctx.slot(0), bytes);
  for (int src = 1; src < n; ++src)
    apply_reduce(op, type, ctx.slot(src), out, count);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Gather / Scatter
// ---------------------------------------------------------------------------

void Engine::gather_linear(Rank& r, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, size_t block,
                           int root, bool in_place) {
  int n = int(c.world_ranks.size());
  if (c.my_comm_rank == root) {
    u8* out = static_cast<u8*>(recvbuf);
    if (!in_place) std::memcpy(out + size_t(root) * block, sendbuf, block);
    for (int src = 0; src < n; ++src) {
      if (src == root) continue;
      r.recv_internal(out + size_t(src) * block, block, src, kCollectiveTag, c);
    }
  } else {
    r.send_internal(sendbuf, block, root, kCollectiveTag, c);
  }
}

void Engine::gather_binomial(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, size_t block,
                             int root, bool in_place) {
  int n = int(c.world_ranks.size());
  int me = rel(c.my_comm_rank, root, n);
  // Subtree of relative rank me spans contiguous relative ranks
  // [me, me + span); stage it in relative order, root reorders at the end.
  int span = me == 0 ? n : std::min(me & -me, n - me);
  std::vector<u8> tmp(size_t(span) * block);
  const u8* own =
      in_place && c.my_comm_rank == root
          ? static_cast<const u8*>(recvbuf) + size_t(root) * block
          : static_cast<const u8*>(sendbuf);
  std::memcpy(tmp.data(), own, block);
  int have = 1;  // blocks held so far, always a contiguous prefix of tmp
  for (int k = 1; k < n; k <<= 1) {
    if ((me & k) != 0) {
      r.send_internal(tmp.data(), size_t(have) * block, unrel(me - k, root, n),
                      kCollectiveTag, c);
      break;
    }
    if (me + k < n) {
      int child_span = std::min(k, n - (me + k));
      r.recv_internal(tmp.data() + size_t(k) * block, size_t(child_span) * block,
                      unrel(me + k, root, n), kCollectiveTag, c);
      have = k + child_span;
    }
  }
  if (me == 0) {
    u8* out = static_cast<u8*>(recvbuf);
    for (int i = 0; i < n; ++i) {
      int abs = unrel(i, root, n);
      if (abs == root && in_place) continue;
      std::memcpy(out + size_t(abs) * block, tmp.data() + size_t(i) * block,
                  block);
    }
  }
}

void Engine::gather_shm(Rank& r, const detail::CommData& c,
                        const void* sendbuf, void* recvbuf, size_t block,
                        int root, bool in_place) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  if (me != root) {
    std::memcpy(ctx.slot(me), sendbuf, block);
    charge(r, block);
  }
  ctx.barrier_wait(*r.world_);
  if (me == root) {
    u8* out = static_cast<u8*>(recvbuf);
    if (!in_place) std::memcpy(out + size_t(root) * block, sendbuf, block);
    for (int src = 0; src < n; ++src) {
      if (src == root) continue;
      std::memcpy(out + size_t(src) * block, ctx.slot(src), block);
    }
    charge(r, block);
  }
  ctx.barrier_wait(*r.world_);
}

void Engine::scatter_linear(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, size_t block,
                            int root, bool in_place) {
  int n = int(c.world_ranks.size());
  if (c.my_comm_rank == root) {
    const u8* in = static_cast<const u8*>(sendbuf);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      r.send_internal(in + size_t(dst) * block, block, dst, kCollectiveTag, c);
    }
    if (!in_place)
      std::memcpy(recvbuf, in + size_t(root) * block, block);
  } else {
    r.recv_internal(recvbuf, block, root, kCollectiveTag, c);
  }
}

void Engine::scatter_binomial(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf, size_t block,
                              int root, bool in_place) {
  int n = int(c.world_ranks.size());
  int me = rel(c.my_comm_rank, root, n);
  int span = me == 0 ? n : std::min(me & -me, n - me);
  std::vector<u8> tmp(size_t(span) * block);
  int lsb = 1 << 30;
  if (me == 0) {
    // Stage sendbuf in relative-rank order so subtrees are contiguous.
    const u8* in = static_cast<const u8*>(sendbuf);
    for (int i = 0; i < n; ++i)
      std::memcpy(tmp.data() + size_t(i) * block,
                  in + size_t(unrel(i, root, n)) * block, block);
  } else {
    lsb = me & -me;
    r.recv_internal(tmp.data(), size_t(span) * block, unrel(me - lsb, root, n),
                    kCollectiveTag, c);
  }
  // Peel off children's subtrees, largest first (mirror of gather fan-in).
  for (int k = floor_pof2(std::min(lsb, n) - 1 > 0 ? std::min(lsb, n) - 1 : 1);
       k >= 1; k >>= 1) {
    if (k < lsb && me + k < n) {
      int child_span = std::min(k, n - (me + k));
      r.send_internal(tmp.data() + size_t(k) * block,
                      size_t(child_span) * block, unrel(me + k, root, n),
                      kCollectiveTag, c);
    }
  }
  if (!(in_place && c.my_comm_rank == root))
    std::memcpy(recvbuf, tmp.data(), block);
}

void Engine::scatter_shm(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, size_t block,
                         int root, bool in_place) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  if (me == root) {
    const u8* in = static_cast<const u8*>(sendbuf);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      std::memcpy(ctx.slot(dst), in + size_t(dst) * block, block);
    }
    if (!in_place)
      std::memcpy(recvbuf, in + size_t(root) * block, block);
    charge(r, block);
  }
  ctx.barrier_wait(*r.world_);
  if (me != root) {
    std::memcpy(recvbuf, ctx.slot(me), block);
    charge(r, block);
  }
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void Engine::allgather_linear(Rank& r, const detail::CommData& c,
                              const void* sendbuf, void* recvbuf, size_t block,
                              bool in_place) {
  size_t total = size_t(c.world_ranks.size()) * block;
  gather_linear(r, c, sendbuf, recvbuf, block, 0, in_place);
  bcast_linear(r, c, recvbuf, total, 0);
}

void Engine::allgather_ring(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, size_t block,
                            bool in_place) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  u8* out = static_cast<u8*>(recvbuf);
  if (!in_place) std::memcpy(out + size_t(me) * block, sendbuf, block);
  // In step s, send block (me - s) to the right, receive block
  // (me - s - 1) from the left.
  int right = (me + 1) % n;
  int left = (me - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    int send_block = (me - s + n) % n;
    int recv_block = (me - s - 1 + n) % n;
    Request req = r.irecv_internal(out + size_t(recv_block) * block, block,
                                   left, kCollectiveTag, c);
    r.send_internal(out + size_t(send_block) * block, block, right,
                    kCollectiveTag, c);
    r.wait(req);
  }
}

void Engine::allgather_rdbl(Rank& r, const detail::CommData& c,
                            const void* sendbuf, void* recvbuf, size_t block,
                            bool in_place) {
  int n = int(c.world_ranks.size());
  if (!is_pof2(n)) {  // hypercube exchange needs a power of two
    allgather_ring(r, c, sendbuf, recvbuf, block, in_place);
    return;
  }
  int me = c.my_comm_rank;
  u8* out = static_cast<u8*>(recvbuf);
  if (!in_place) std::memcpy(out + size_t(me) * block, sendbuf, block);
  // At step `mask` each rank owns the `mask` blocks starting at
  // (me & ~(mask - 1)); partners swap regions, doubling ownership.
  for (int mask = 1; mask < n; mask <<= 1) {
    int partner = me ^ mask;
    int my_start = me & ~(mask - 1);
    int peer_start = partner & ~(mask - 1);
    Request req = r.irecv_internal(out + size_t(peer_start) * block,
                                   size_t(mask) * block, partner,
                                   kCollectiveTag, c);
    r.send_internal(out + size_t(my_start) * block, size_t(mask) * block,
                    partner, kCollectiveTag, c);
    r.wait(req);
  }
}

void Engine::allgather_shm(Rank& r, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, size_t block,
                           bool in_place) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  u8* out = static_cast<u8*>(recvbuf);
  const u8* own = in_place ? out + size_t(me) * block
                           : static_cast<const u8*>(sendbuf);
  std::memcpy(ctx.slot(me), own, block);
  charge(r, block);
  ctx.barrier_wait(*r.world_);
  for (int src = 0; src < n; ++src) {
    if (src == me) continue;
    std::memcpy(out + size_t(src) * block, ctx.slot(src), block);
  }
  if (!in_place) std::memcpy(out + size_t(me) * block, sendbuf, block);
  charge(r, block);
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

void Engine::alltoall_linear(Rank& r, const detail::CommData& c,
                             const void* sendbuf, void* recvbuf, size_t sblock,
                             size_t rblock) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(me) * rblock, in + size_t(me) * sblock, sblock);
  // Post every receive, then push every send in rank order.
  std::vector<Request> reqs;
  reqs.reserve(size_t(n) - 1);
  for (int src = 0; src < n; ++src) {
    if (src == me) continue;
    reqs.push_back(r.irecv_internal(out + size_t(src) * rblock, rblock, src,
                                    kCollectiveTag, c));
  }
  for (int dst = 0; dst < n; ++dst) {
    if (dst == me) continue;
    r.send_internal(in + size_t(dst) * sblock, sblock, dst, kCollectiveTag, c);
  }
  r.waitall(reqs);
}

void Engine::alltoall_pairwise(Rank& r, const detail::CommData& c,
                               const void* sendbuf, void* recvbuf,
                               size_t sblock, size_t rblock) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + size_t(me) * rblock, in + size_t(me) * sblock, sblock);
  // Rotated pairwise exchange: step s pairs me with (me + s) / (me - s).
  for (int s = 1; s < n; ++s) {
    int to = (me + s) % n;
    int from = (me - s + n) % n;
    Request req = r.irecv_internal(out + size_t(from) * rblock, rblock, from,
                                   kCollectiveTag, c);
    r.send_internal(in + size_t(to) * sblock, sblock, to, kCollectiveTag, c);
    r.wait(req);
  }
}

// ---------------------------------------------------------------------------
// Reduce_scatter (sendbuf == nullptr means in-place: input in recvbuf)
// ---------------------------------------------------------------------------

void Engine::reduce_scatter_linear(Rank& r, const detail::CommData& c,
                                   const void* sendbuf, void* recvbuf,
                                   const int* recvcounts, Datatype type,
                                   ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  int total = 0;
  std::vector<int> offs(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    offs[i] = total;
    total += recvcounts[i];
  }
  const void* input = sendbuf != nullptr ? sendbuf : recvbuf;
  // Reduce the full vector to rank 0 in canonical order, then scatterv.
  std::vector<u8> full;
  if (me == 0) full.resize(size_t(total) * esize);
  reduce_linear(r, c, input, me == 0 ? full.data() : nullptr, total, type, op,
                0);
  if (me == 0) {
    for (int dst = 1; dst < n; ++dst)
      r.send_internal(full.data() + size_t(offs[dst]) * esize,
                      size_t(recvcounts[dst]) * esize, dst, kCollectiveTag, c);
    std::memcpy(recvbuf, full.data(), size_t(recvcounts[0]) * esize);
  } else {
    r.recv_internal(recvbuf, size_t(recvcounts[me]) * esize, 0, kCollectiveTag,
                    c);
  }
}

void Engine::reduce_scatter_pairwise(Rank& r, const detail::CommData& c,
                                     const void* sendbuf, void* recvbuf,
                                     const int* recvcounts, Datatype type,
                                     ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  std::vector<int> offs(static_cast<size_t>(n));
  int total = 0;
  for (int i = 0; i < n; ++i) {
    offs[i] = total;
    total += recvcounts[i];
  }
  const u8* in = static_cast<const u8*>(sendbuf != nullptr ? sendbuf : recvbuf);
  size_t my_bytes = size_t(recvcounts[me]) * esize;
  // Accumulate into a staging buffer: with in-place input, recvbuf still
  // feeds outgoing chunks during the exchange.
  std::vector<u8> acc(my_bytes);
  std::memcpy(acc.data(), in + size_t(offs[me]) * esize, my_bytes);
  std::vector<u8> tmp(my_bytes);
  for (int s = 1; s < n; ++s) {
    int to = (me + s) % n;
    int from = (me - s + n) % n;
    Request req =
        r.irecv_internal(tmp.data(), my_bytes, from, kCollectiveTag, c);
    r.send_internal(in + size_t(offs[to]) * esize,
                    size_t(recvcounts[to]) * esize, to, kCollectiveTag, c);
    r.wait(req);
    apply_reduce(op, type, tmp.data(), acc.data(), recvcounts[me]);
  }
  std::memcpy(recvbuf, acc.data(), my_bytes);
}

void Engine::reduce_scatter_shm(Rank& r, const detail::CommData& c,
                                const void* sendbuf, void* recvbuf,
                                const int* recvcounts, Datatype type,
                                ReduceOp op) {
  CollectiveContext& ctx = *c.coll;
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t esize = datatype_size(type);
  std::vector<int> offs(static_cast<size_t>(n));
  int total = 0;
  for (int i = 0; i < n; ++i) {
    offs[i] = total;
    total += recvcounts[i];
  }
  const void* input = sendbuf != nullptr ? sendbuf : recvbuf;
  std::memcpy(ctx.slot(me), input, size_t(total) * esize);
  charge(r, size_t(total) * esize);
  ctx.barrier_wait(*r.world_);
  size_t my_off = size_t(offs[me]) * esize;
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out, ctx.slot(0) + my_off, size_t(recvcounts[me]) * esize);
  for (int src = 1; src < n; ++src)
    apply_reduce(op, type, ctx.slot(src) + my_off, out, recvcounts[me]);
  charge(r, size_t(recvcounts[me]) * esize);
  ctx.barrier_wait(*r.world_);
}

// ---------------------------------------------------------------------------
// Scan / Exscan
// ---------------------------------------------------------------------------

void Engine::scan_linear(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, int count,
                         Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  std::vector<u8> own(bytes);
  std::memcpy(own.data(), sendbuf, bytes);  // sendbuf may alias recvbuf
  if (me > 0) {
    r.recv_internal(recvbuf, bytes, me - 1, kCollectiveTag, c);
    apply_reduce(op, type, own.data(), recvbuf, count);
  } else {
    std::memcpy(recvbuf, own.data(), bytes);
  }
  if (me < n - 1)
    r.send_internal(recvbuf, bytes, me + 1, kCollectiveTag, c);
}

void Engine::scan_rdbl(Rank& r, const detail::CommData& c,
                       const void* sendbuf, void* recvbuf, int count,
                       Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  if (recvbuf != sendbuf) std::memmove(recvbuf, sendbuf, bytes);
  // partial = reduction over the contiguous rank window ending at me;
  // result (recvbuf) accumulates everything at or below me.
  std::vector<u8> partial(bytes);
  std::memcpy(partial.data(), recvbuf, bytes);
  std::vector<u8> tmp(bytes);
  for (int mask = 1; mask < n; mask <<= 1) {
    int up = me + mask, down = me - mask;
    Request req;
    if (down >= 0)
      req = r.irecv_internal(tmp.data(), bytes, down, kCollectiveTag, c);
    if (up < n)
      r.send_internal(partial.data(), bytes, up, kCollectiveTag, c);
    if (down >= 0) {
      r.wait(req);
      apply_reduce(op, type, tmp.data(), recvbuf, count);
      apply_reduce(op, type, tmp.data(), partial.data(), count);
    }
  }
}

void Engine::scan_shm(Rank& r, const detail::CommData& c, const void* sendbuf,
                      void* recvbuf, int count, Datatype type, ReduceOp op) {
  CollectiveContext& ctx = *c.coll;
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  std::memcpy(ctx.slot(me), sendbuf, bytes);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out, ctx.slot(0), bytes);
  for (int src = 1; src <= me; ++src)
    apply_reduce(op, type, ctx.slot(src), out, count);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
}

void Engine::exscan_linear(Rank& r, const detail::CommData& c,
                           const void* sendbuf, void* recvbuf, int count,
                           Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  std::vector<u8> own(bytes);
  std::memcpy(own.data(), sendbuf, bytes);
  if (me > 0)  // recvbuf stays untouched on rank 0 (MPI semantics)
    r.recv_internal(recvbuf, bytes, me - 1, kCollectiveTag, c);
  if (me < n - 1) {
    if (me == 0) {
      r.send_internal(own.data(), bytes, 1, kCollectiveTag, c);
    } else {
      std::vector<u8> incl(bytes);
      std::memcpy(incl.data(), recvbuf, bytes);
      apply_reduce(op, type, own.data(), incl.data(), count);
      r.send_internal(incl.data(), bytes, me + 1, kCollectiveTag, c);
    }
  }
}

void Engine::exscan_rdbl(Rank& r, const detail::CommData& c,
                         const void* sendbuf, void* recvbuf, int count,
                         Datatype type, ReduceOp op) {
  int n = int(c.world_ranks.size());
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  std::vector<u8> partial(bytes);
  std::memcpy(partial.data(), sendbuf, bytes);
  std::vector<u8> tmp(bytes);
  bool have_result = false;
  for (int mask = 1; mask < n; mask <<= 1) {
    int up = me + mask, down = me - mask;
    Request req;
    if (down >= 0)
      req = r.irecv_internal(tmp.data(), bytes, down, kCollectiveTag, c);
    if (up < n)
      r.send_internal(partial.data(), bytes, up, kCollectiveTag, c);
    if (down >= 0) {
      r.wait(req);
      // Incoming windows tile [0, me) exactly across the rounds.
      if (!have_result) {
        std::memcpy(recvbuf, tmp.data(), bytes);
        have_result = true;
      } else {
        apply_reduce(op, type, tmp.data(), recvbuf, count);
      }
      apply_reduce(op, type, tmp.data(), partial.data(), count);
    }
  }
}

void Engine::exscan_shm(Rank& r, const detail::CommData& c,
                        const void* sendbuf, void* recvbuf, int count,
                        Datatype type, ReduceOp op) {
  CollectiveContext& ctx = *c.coll;
  int me = c.my_comm_rank;
  size_t bytes = size_t(count) * datatype_size(type);
  std::memcpy(ctx.slot(me), sendbuf, bytes);
  charge(r, bytes);
  ctx.barrier_wait(*r.world_);
  if (me > 0) {
    u8* out = static_cast<u8*>(recvbuf);
    std::memcpy(out, ctx.slot(0), bytes);
    for (int src = 1; src < me; ++src)
      apply_reduce(op, type, ctx.slot(src), out, count);
    charge(r, bytes);
  }
  ctx.barrier_wait(*r.world_);
}

}  // namespace coll
}  // namespace mpiwasm::simmpi
