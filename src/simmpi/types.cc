#include "simmpi/types.h"

#include <cstdlib>

namespace mpiwasm::simmpi {

namespace {

/// MPIWASM_RNDV_CHUNK=<bytes> overrides the rendezvous pipeline segment
/// size of every built-in profile (0 = unsegmented).
size_t env_rndv_chunk(size_t dflt) {
  const char* s = std::getenv("MPIWASM_RNDV_CHUNK");
  if (s == nullptr || *s == '\0') return dflt;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return dflt;
  return size_t(v);
}

}  // namespace

size_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte: return 1;
    case Datatype::kChar: return 1;
    case Datatype::kInt: return 4;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
    case Datatype::kLong: return 8;
    case Datatype::kUnsigned: return 4;
    case Datatype::kLongLong: return 8;
  }
  throw MpiError("invalid datatype");
}

const char* datatype_name(Datatype t) {
  switch (t) {
    case Datatype::kByte: return "MPI_BYTE";
    case Datatype::kChar: return "MPI_CHAR";
    case Datatype::kInt: return "MPI_INT";
    case Datatype::kFloat: return "MPI_FLOAT";
    case Datatype::kDouble: return "MPI_DOUBLE";
    case Datatype::kLong: return "MPI_LONG";
    case Datatype::kUnsigned: return "MPI_UNSIGNED";
    case Datatype::kLongLong: return "MPI_LONG_LONG";
  }
  return "?";
}

NetworkProfile NetworkProfile::zero() {
  NetworkProfile p;
  p.rendezvous_chunk = env_rndv_chunk(p.rendezvous_chunk);
  return p;
}

NetworkProfile NetworkProfile::omnipath() {
  NetworkProfile p;
  p.name = "omnipath";
  p.latency_ns = 900;        // ~0.9us MPI half-round-trip latency
  p.bytes_per_ns = 12.5;     // 100 Gbit/s
  p.rendezvous_chunk = env_rndv_chunk(p.rendezvous_chunk);
  return p;
}

NetworkProfile NetworkProfile::graviton2() {
  NetworkProfile p;
  p.name = "graviton2";
  p.latency_ns = 450;        // single-node shared-memory transport
  p.bytes_per_ns = 11.0;     // ~11 GiB/s effective
  p.rendezvous_chunk = env_rndv_chunk(p.rendezvous_chunk);
  return p;
}

NetworkProfile NetworkProfile::grpc_messaging() {
  NetworkProfile p;
  p.name = "grpc-messaging";
  p.latency_ns = 18'000;        // broker round trip
  p.bytes_per_ns = 1.25;        // 10 Gbit/s
  p.serialize_ns_per_kib = 250; // protobuf-style encode/decode
  p.force_copy = true;          // no zero-copy handoff
  p.eager_limit = SIZE_MAX;     // everything is staged through buffers
  p.rendezvous_chunk = env_rndv_chunk(p.rendezvous_chunk);
  return p;
}

}  // namespace mpiwasm::simmpi
