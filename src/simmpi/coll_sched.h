// Nonblocking collectives: resumable step schedules + per-rank progress.
//
// Every registry algorithm of coll_algos.h has a second life here as a
// *schedule*: a DAG of isend / irecv / local-reduce / copy / shm-phase
// steps whose dependencies encode exactly the ordering the blocking
// implementation got from program order. Initiating MPI_Iallreduce & co.
// builds the schedule, posts its first wave of steps, and returns a
// request; the per-rank progress engine (Rank::icoll_progress) then
// advances all outstanding schedules from wait/test/waitall and
// opportunistically from every blocking MPI entry point, so computation
// folded between initiation and completion overlaps the collective.
//
// Cost-model honesty, nonblocking edition: p2p schedule steps charge the
// NetworkProfile per message like the blocking algorithms do, but as a
// *completion deadline* instead of an injection spin — modeling the
// NIC-offloaded asynchronous transfer that makes overlap worthwhile in
// the first place. The step is posted immediately (so peers can match it)
// and counts as complete only once both the transfer finished and its
// wire-time deadline elapsed. Shared-memory phases charge the same way on
// their fan-in/fan-out arrivals.
//
// Concurrency: schedules are confined to the owning rank thread; cross-
// rank traffic flows through the mailbox transport or through a per-
// operation IcollShmGroup (world.h) whose single-use two-phase barrier
// keeps interleaved outstanding shm collectives from mixing arrivals.
#pragma once

#include <memory>
#include <vector>

#include "simmpi/world.h"

namespace mpiwasm::simmpi::coll {

class Schedule {
 public:
  using StepId = int;
  static constexpr StepId kNone = -1;

  /// `seq` is the per-communicator operation sequence number; it derives
  /// the schedule's private tag stride (types.h kIcollTagBase).
  Schedule(World* world, const detail::CommData& c, i64 seq);
  ~Schedule();
  Schedule(const Schedule&) = delete;
  Schedule& operator=(const Schedule&) = delete;

  bool done() const { return remaining_ == 0; }
  /// Steps not yet completed (progress-detection for poll backoff).
  int remaining() const { return remaining_; }
  /// Advances every runnable step; returns done(). Never blocks.
  bool progress(Rank& r);
  /// Communicator this schedule runs on (comm_free drains by this id).
  i32 comm_id() const { return comm_id_; }

  // --- build API (used by the build_* factories below) ----------------------
  /// Allocates a stable scratch buffer owned by the schedule.
  u8* scratch(size_t bytes);
  /// Lazily attaches this operation's shared-memory group (shm variants).
  IcollShmGroup& shm_group(size_t slot_bytes);
  /// p2p steps: `round` disambiguates repeated same-peer messages within
  /// one schedule (must be < kIcollRounds). kNone deps are ignored.
  StepId send(const void* buf, size_t bytes, int peer, int round,
              std::vector<StepId> deps);
  StepId recv(void* buf, size_t bytes, int peer, int round,
              std::vector<StepId> deps);
  /// Local steps. copy uses memmove semantics (src may alias dst).
  StepId reduce(const void* src, void* dst, int count, Datatype type,
                ReduceOp op, std::vector<StepId> deps);
  StepId copy(const void* src, void* dst, size_t bytes,
              std::vector<StepId> deps);
  /// Shm phase steps: arrive posts the release increment immediately and
  /// completes once `charge_bytes` of wire time elapsed; wait completes
  /// when all ranks arrived at `phase`.
  StepId shm_arrive(int phase, size_t charge_bytes, std::vector<StepId> deps);
  StepId shm_wait(int phase, std::vector<StepId> deps);

 private:
  struct Step {
    enum class Kind { kSend, kRecv, kReduce, kCopy, kShmArrive, kShmWait };
    enum class State { kPending, kStarted, kDone };
    Kind kind;
    State state = State::kPending;
    const void* src = nullptr;
    void* dst = nullptr;
    size_t bytes = 0;
    int count = 0;
    Datatype type = Datatype::kByte;
    ReduceOp op = ReduceOp::kSum;
    int peer = -1;
    int tag = 0;
    int phase = 0;
    u64 wire_ns = 0;      // cost charged as a completion deadline
    u64 ready_at_ns = 0;  // set when the step starts
    Request req;          // in-flight p2p transfer
    std::vector<StepId> deps;
  };

  StepId push(Step step, std::vector<StepId> deps);
  bool deps_done(const Step& s) const;
  /// Starts/polls one runnable step; returns true when it completed.
  bool advance(Rank& r, Step& s);

  World* world_;
  const detail::CommData* c_;
  i32 comm_id_;  // survives the CommData for teardown after comm_free
  i64 seq_;
  int tag_base_;
  std::vector<Step> steps_;
  int remaining_ = 0;
  std::vector<std::unique_ptr<std::vector<u8>>> scratch_;
  std::shared_ptr<IcollShmGroup> shm_;
};

// ---------------------------------------------------------------------------
// Schedule factories: one per collective, covering every algorithm the
// blocking registry (coll_algos.h algos_for) offers for it. `algo` must be
// a concrete choice (the entry points resolve kAuto via coll::select, so
// nonblocking calls land on the same tuned algorithm as blocking ones).
// All buffers pre-resolved (no MPI_IN_PLACE sentinels) as in coll::Engine.
// ---------------------------------------------------------------------------

std::shared_ptr<Schedule> build_ibarrier(World* w, const detail::CommData& c,
                                         i64 seq, CollAlgo algo);
std::shared_ptr<Schedule> build_ibcast(World* w, const detail::CommData& c,
                                       i64 seq, CollAlgo algo, void* buf,
                                       size_t bytes, int root);
std::shared_ptr<Schedule> build_ireduce(World* w, const detail::CommData& c,
                                        i64 seq, CollAlgo algo,
                                        const void* sendbuf, void* recvbuf,
                                        int count, Datatype type, ReduceOp op,
                                        int root);
std::shared_ptr<Schedule> build_iallreduce(World* w, const detail::CommData& c,
                                           i64 seq, CollAlgo algo,
                                           const void* sendbuf, void* recvbuf,
                                           int count, Datatype type,
                                           ReduceOp op);
/// `sendbuf` must be pre-resolved: under MPI_IN_PLACE it points at the
/// caller's own block inside recvbuf (the initial own-block copy is a
/// memmove, so the alias is harmless).
std::shared_ptr<Schedule> build_iallgather(World* w, const detail::CommData& c,
                                           i64 seq, CollAlgo algo,
                                           const void* sendbuf, void* recvbuf,
                                           size_t block);
std::shared_ptr<Schedule> build_ialltoall(World* w, const detail::CommData& c,
                                          i64 seq, CollAlgo algo,
                                          const void* sendbuf, void* recvbuf,
                                          size_t sblock, size_t rblock);
/// `sendbuf == nullptr` means in-place (input already in recvbuf).
/// `recvcounts` is only read during the build; it need not outlive the call.
std::shared_ptr<Schedule> build_ireduce_scatter(
    World* w, const detail::CommData& c, i64 seq, CollAlgo algo,
    const void* sendbuf, void* recvbuf, const int* recvcounts, Datatype type,
    ReduceOp op);
std::shared_ptr<Schedule> build_iscan(World* w, const detail::CommData& c,
                                      i64 seq, CollAlgo algo,
                                      const void* sendbuf, void* recvbuf,
                                      int count, Datatype type, ReduceOp op);
/// Requires n > 1 (the entry point short-circuits singleton comms; rank 0's
/// recvbuf stays untouched per MPI semantics).
std::shared_ptr<Schedule> build_iexscan(World* w, const detail::CommData& c,
                                        i64 seq, CollAlgo algo,
                                        const void* sendbuf, void* recvbuf,
                                        int count, Datatype type, ReduceOp op);

}  // namespace mpiwasm::simmpi::coll
