// Typed reduction kernels for simmpi collectives.
#pragma once

#include "simmpi/types.h"

namespace mpiwasm::simmpi {

/// inout[i] = op(inout[i], in[i]) for count elements of type t.
void apply_reduce(ReduceOp op, Datatype t, const void* in, void* inout,
                  int count);

}  // namespace mpiwasm::simmpi
