#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Every relative markdown link in README.md and docs/*.md resolves to an
   existing file (external http(s) links and #anchors are skipped).
2. Every MPIWASM_* identifier appearing in src/ is documented in
   docs/TUNING.md (substring match, so MPIWASM_COLL_ prefixes are covered
   by any fully spelled variable).

Exit code 0 when both hold; prints every violation otherwise.
"""
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
failures = []


def check_links():
    md_files = ["README.md"] + [
        os.path.join("docs", f)
        for f in sorted(os.listdir(os.path.join(ROOT, "docs")))
        if f.endswith(".md")
    ]
    link_re = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
    for md in md_files:
        text = open(os.path.join(ROOT, md), encoding="utf-8").read()
        for target in link_re.findall(text):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            base = os.path.dirname(os.path.join(ROOT, md))
            if not os.path.exists(os.path.join(base, target)):
                failures.append(f"{md}: broken link -> {target}")


def check_tuning_coverage():
    tuning = open(os.path.join(ROOT, "docs", "TUNING.md"), encoding="utf-8").read()
    token_re = re.compile(r"MPIWASM_[A-Z0-9_]+")
    tokens = set()
    for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "src")):
        for fn in filenames:
            if not fn.endswith((".h", ".cc", ".inc")):
                continue
            text = open(os.path.join(dirpath, fn), encoding="utf-8").read()
            tokens.update(token_re.findall(text))
    for tok in sorted(tokens):
        # A prefix token like MPIWASM_COLL_ is covered by any documented
        # variable that starts with it.
        if tok.rstrip("_") in tuning or any(
            t.startswith(tok) for t in token_re.findall(tuning)
        ):
            continue
        failures.append(f"docs/TUNING.md: undocumented variable {tok}")


def main():
    check_links()
    check_tuning_coverage()
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
